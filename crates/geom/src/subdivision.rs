//! Spatial subdivisions of the planning space into regions.
//!
//! Two subdivision schemes, mirroring the paper:
//!
//! * [`GridSubdivision`] — uniform axis-aligned grid (Algorithm 1, used for
//!   parallel PRM). Regions are grid cells, optionally inflated by an overlap
//!   margin so neighbouring regional roadmaps can be connected.
//! * [`RadialSubdivision`] — uniform radial subdivision (Algorithm 2, used
//!   for parallel RRT). Regions are cones around rays from a root
//!   configuration through points sampled on a hypersphere.

use crate::aabb::Aabb;
use crate::point::Point;
use crate::sphere;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Identifier of a region within a subdivision.
pub type RegionId = u32;

/// Uniform grid subdivision of an axis-aligned planning space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridSubdivision<const D: usize> {
    bounds: Aabb<D>,
    #[serde(with = "crate::array_serde")]
    dims: [usize; D],
    /// Overlap margin added to every region on all sides (absolute units),
    /// clipped to the bounds. Overlap lets boundary samples connect adjacent
    /// regional roadmaps (paper §II-B.1).
    overlap: f64,
}

impl<const D: usize> GridSubdivision<D> {
    /// Subdivide `bounds` into a grid with the given per-axis cell counts.
    ///
    /// # Panics
    /// Panics if any dimension count is zero.
    pub fn new(bounds: Aabb<D>, dims: [usize; D], overlap: f64) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "grid dims must be positive");
        GridSubdivision {
            bounds,
            dims,
            overlap: overlap.max(0.0),
        }
    }

    /// Subdivide into *approximately* `target` regions using a near-cubic
    /// grid (per-axis counts equal). The actual region count is
    /// `ceil(target^(1/D))^D >= target`.
    pub fn with_target_regions(bounds: Aabb<D>, target: usize, overlap: f64) -> Self {
        let target = target.max(1);
        let mut k = (target as f64).powf(1.0 / D as f64).floor() as usize;
        k = k.max(1);
        let count = |k: usize| k.pow(D as u32);
        while count(k) < target {
            k += 1;
        }
        Self::new(bounds, [k; D], overlap)
    }

    /// Total number of regions.
    pub fn num_regions(&self) -> usize {
        self.dims.iter().product()
    }

    /// The planning-space bounds.
    pub fn bounds(&self) -> &Aabb<D> {
        &self.bounds
    }

    /// Per-axis cell counts.
    pub fn dims(&self) -> &[usize; D] {
        &self.dims
    }

    /// Overlap margin.
    pub fn overlap(&self) -> f64 {
        self.overlap
    }

    /// Multi-index of a region id (row-major; axis 0 varies fastest).
    pub fn index_of(&self, id: RegionId) -> [usize; D] {
        let mut rem = id as usize;
        let mut idx = [0usize; D];
        for (i, x) in idx.iter_mut().enumerate() {
            *x = rem % self.dims[i];
            rem /= self.dims[i];
        }
        idx
    }

    /// Region id of a multi-index.
    pub fn id_of(&self, idx: &[usize; D]) -> RegionId {
        let mut id = 0usize;
        for i in (0..D).rev() {
            debug_assert!(idx[i] < self.dims[i]);
            id = id * self.dims[i] + idx[i];
        }
        id as RegionId
    }

    /// The core (non-overlapping) cell of a region.
    pub fn core_cell(&self, id: RegionId) -> Aabb<D> {
        let idx = self.index_of(id);
        let ext = self.bounds.extents();
        let mut lo = self.bounds.lo();
        let mut hi = self.bounds.lo();
        for i in 0..D {
            let step = ext[i] / self.dims[i] as f64;
            lo[i] += step * idx[i] as f64;
            hi[i] = lo[i] + step;
        }
        Aabb::new(lo, hi)
    }

    /// The region including its overlap margin, clipped to the bounds.
    pub fn region(&self, id: RegionId) -> Aabb<D> {
        self.core_cell(id)
            .inflate(self.overlap)
            .clip_to(&self.bounds)
    }

    /// Centroid of a region's core cell.
    pub fn centroid(&self, id: RegionId) -> Point<D> {
        self.core_cell(id).center()
    }

    /// The region owning a point (by core cells; boundary points go to the
    /// higher-index cell except at the upper bound).
    pub fn region_of(&self, p: &Point<D>) -> Option<RegionId> {
        if !self.bounds.contains(p) {
            return None;
        }
        let ext = self.bounds.extents();
        let mut idx = [0usize; D];
        for i in 0..D {
            let step = ext[i] / self.dims[i] as f64;
            let rel = ((p[i] - self.bounds.lo()[i]) / step).floor() as isize;
            idx[i] = rel.clamp(0, self.dims[i] as isize - 1) as usize;
        }
        Some(self.id_of(&idx))
    }

    /// Face-adjacent neighbours (up to `2 * D`).
    pub fn neighbors(&self, id: RegionId) -> Vec<RegionId> {
        let idx = self.index_of(id);
        let mut out = Vec::with_capacity(2 * D);
        for i in 0..D {
            if idx[i] > 0 {
                let mut n = idx;
                n[i] -= 1;
                out.push(self.id_of(&n));
            }
            if idx[i] + 1 < self.dims[i] {
                let mut n = idx;
                n[i] += 1;
                out.push(self.id_of(&n));
            }
        }
        out
    }

    /// The axis-0 column index of a region. The paper's *naïve* mapping
    /// assigns contiguous blocks of columns to processors (§IV-B).
    pub fn column_of(&self, id: RegionId) -> usize {
        self.index_of(id)[0]
    }

    /// Number of columns along axis 0.
    pub fn num_columns(&self) -> usize {
        self.dims[0]
    }

    /// Iterate all region ids.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.num_regions() as u32).map(|i| i as RegionId)
    }
}

/// Uniform radial subdivision: cones rooted at `root` around directions
/// sampled on the unit sphere, truncated at `radius`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadialSubdivision<const D: usize> {
    root: Point<D>,
    radius: f64,
    dirs: Vec<Point<D>>,
    /// Cosine of the cone half-angle *including* overlap; membership test is
    /// `dot(normalize(p - root), dir) >= cos_half_angle`.
    cos_half_angle: f64,
    /// Cone half-angle without overlap (radians), for reference.
    base_half_angle: f64,
}

impl<const D: usize> RadialSubdivision<D> {
    /// Create a radial subdivision with `nr` random directions.
    ///
    /// `overlap_factor >= 1.0` scales the cone half-angle beyond the
    /// coverage angle so adjacent branches can explore shared space
    /// (paper §II-B.2: "some overlap between regions is allowed").
    ///
    /// Directions are sorted into angular bands so region ids are spatially
    /// coherent: a contiguous id block (the naïve mapping) is then an
    /// angular sector, mirroring the spatially-contiguous naïve column
    /// mapping used for the grid subdivision.
    pub fn sample(root: Point<D>, radius: f64, nr: usize, overlap_factor: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dirs = sphere::sample_unit_vectors::<D, _>(&mut rng, nr.max(1));
        let bands = ((nr.max(1) as f64).sqrt().ceil() as i64).max(1);
        dirs.sort_by(|a, b| {
            // primary: azimuthal wedge; secondary: polar coordinate — a
            // contiguous id block is then a compact angular sector
            let wedge = |d: &Point<D>| {
                if D >= 2 {
                    let az = d[1].atan2(d[0]); // [-pi, pi]
                    ((az + std::f64::consts::PI) / (2.0 * std::f64::consts::PI) * bands as f64)
                        .min(bands as f64 - 1.0) as i64
                } else {
                    0
                }
            };
            wedge(a)
                .cmp(&wedge(b))
                .then(a[D - 1].total_cmp(&b[D - 1]))
                .then(a[0].total_cmp(&b[0]))
        });
        Self::from_directions(root, radius, dirs, overlap_factor)
    }

    /// Create from explicit directions (normalized internally).
    pub fn from_directions(
        root: Point<D>,
        radius: f64,
        dirs: Vec<Point<D>>,
        overlap_factor: f64,
    ) -> Self {
        assert!(!dirs.is_empty(), "radial subdivision needs >= 1 direction");
        let dirs: Vec<Point<D>> = dirs
            .into_iter()
            .map(|d| d.normalized().expect("direction must be nonzero"))
            .collect();
        let base = coverage_half_angle::<D>(dirs.len());
        let half = (base * overlap_factor.max(1.0)).min(std::f64::consts::PI);
        RadialSubdivision {
            root,
            radius,
            dirs,
            cos_half_angle: half.cos(),
            base_half_angle: base,
        }
    }

    pub fn root(&self) -> Point<D> {
        self.root
    }

    pub fn radius(&self) -> f64 {
        self.radius
    }

    pub fn num_regions(&self) -> usize {
        self.dirs.len()
    }

    /// Direction (region candidate ray) of region `i`.
    pub fn direction(&self, i: RegionId) -> Point<D> {
        self.dirs[i as usize]
    }

    /// Target point of region `i`: `root + radius * dir_i` (the `q_i` toward
    /// which the regional RRT growth is biased).
    pub fn target(&self, i: RegionId) -> Point<D> {
        self.root + self.dirs[i as usize] * self.radius
    }

    /// Cone half-angle without overlap (radians).
    pub fn base_half_angle(&self) -> f64 {
        self.base_half_angle
    }

    /// Is `p` inside region `i`'s (overlapping) cone and within the radius?
    /// The root itself belongs to every region.
    pub fn in_region(&self, i: RegionId, p: &Point<D>) -> bool {
        let v = *p - self.root;
        let n = v.norm();
        if n > self.radius {
            return false;
        }
        if n <= 1e-12 {
            return true;
        }
        v.dot(&self.dirs[i as usize]) / n >= self.cos_half_angle
    }

    /// Region whose direction is closest in angle to `p - root` (linear scan
    /// over directions; intended for analysis/queries, not inner loops).
    pub fn owner(&self, p: &Point<D>) -> RegionId {
        let v = *p - self.root;
        if v.norm() <= 1e-12 {
            return 0;
        }
        let mut best = 0usize;
        let mut best_dot = f64::NEG_INFINITY;
        for (i, d) in self.dirs.iter().enumerate() {
            let dot = v.dot(d);
            if dot > best_dot {
                best_dot = dot;
                best = i;
            }
        }
        best as RegionId
    }

    /// For each region, the `k` angularly-nearest other regions (the region
    /// graph edges of Algorithm 2).
    pub fn knn_adjacency(&self, k: usize) -> Vec<Vec<RegionId>> {
        let n = self.dirs.len();
        let k = k.min(n.saturating_sub(1));
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut others: Vec<(f64, u32)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (-self.dirs[i].dot(&self.dirs[j]), j as u32))
                .collect();
            others.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            out.push(others.into_iter().take(k).map(|(_, j)| j).collect());
        }
        out
    }

    /// An axis-aligned bounding box of region `i` (cone ∩ ball), used for
    /// coarse spatial partitioning heuristics.
    pub fn region_bbox(&self, i: RegionId) -> Aabb<D> {
        // Conservative: box around the cone's axis segment, padded by the
        // cone's end radius.
        let end = self.target(i);
        let pad = self.radius
            * (1.0 - self.cos_half_angle * self.cos_half_angle)
                .max(0.0)
                .sqrt();
        Aabb::new(self.root, end).inflate(pad)
    }
}

/// Half-angle such that `n` cones of that half-angle cover `S^{D-1}`
/// (area-based estimate; exact for D = 2).
fn coverage_half_angle<const D: usize>(n: usize) -> f64 {
    let n = n.max(1) as f64;
    match D {
        1 => std::f64::consts::PI,
        2 => std::f64::consts::PI / n,
        3 => {
            // spherical cap area 2π(1 - cosθ); total 4π
            (1.0 - 2.0 / n).clamp(-1.0, 1.0).acos()
        }
        _ => {
            // generic falloff: θ ~ π * n^{-1/(D-1)}
            std::f64::consts::PI * n.powf(-1.0 / (D as f64 - 1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts_and_roundtrip() {
        let g: GridSubdivision<2> = GridSubdivision::new(Aabb::unit(), [4, 3], 0.0);
        assert_eq!(g.num_regions(), 12);
        for id in 0..12u32 {
            let idx = g.index_of(id);
            assert_eq!(g.id_of(&idx), id);
        }
    }

    #[test]
    fn grid_target_regions_at_least_requested() {
        let g: GridSubdivision<3> = GridSubdivision::with_target_regions(Aabb::unit(), 100, 0.0);
        assert!(g.num_regions() >= 100);
        assert_eq!(g.dims(), &[5, 5, 5]);
    }

    #[test]
    fn grid_cells_partition_bounds() {
        let g: GridSubdivision<2> = GridSubdivision::new(Aabb::unit(), [4, 4], 0.0);
        let total: f64 = g.region_ids().map(|id| g.core_cell(id).volume()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grid_region_of_inverts_centroid() {
        let g: GridSubdivision<2> = GridSubdivision::new(Aabb::unit(), [5, 7], 0.0);
        for id in g.region_ids() {
            assert_eq!(g.region_of(&g.centroid(id)), Some(id));
        }
        assert_eq!(g.region_of(&Point::splat(2.0)), None);
    }

    #[test]
    fn grid_overlap_expands_but_clips() {
        let g: GridSubdivision<2> = GridSubdivision::new(Aabb::unit(), [2, 2], 0.1);
        let r = g.region(0);
        assert!(r.lo()[0] >= 0.0 && r.lo()[1] >= 0.0);
        assert!((r.hi()[0] - 0.6).abs() < 1e-12);
        // overlapping regions intersect
        assert!(g.region(0).intersects(&g.region(1)));
    }

    #[test]
    fn grid_neighbors_face_adjacent() {
        let g: GridSubdivision<2> = GridSubdivision::new(Aabb::unit(), [3, 3], 0.0);
        // center cell (1,1) -> id 4 has 4 neighbors
        let center = g.id_of(&[1, 1]);
        let mut n = g.neighbors(center);
        n.sort_unstable();
        assert_eq!(
            n,
            vec![
                g.id_of(&[0, 1]),
                g.id_of(&[2, 1]),
                g.id_of(&[1, 0]),
                g.id_of(&[1, 2])
            ]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
        );
        // corner has 2
        assert_eq!(g.neighbors(g.id_of(&[0, 0])).len(), 2);
    }

    #[test]
    fn grid_columns() {
        let g: GridSubdivision<2> = GridSubdivision::new(Aabb::unit(), [4, 2], 0.0);
        assert_eq!(g.num_columns(), 4);
        assert_eq!(g.column_of(g.id_of(&[3, 1])), 3);
    }

    #[test]
    fn radial_membership_and_owner() {
        let dirs = sphere::evenly_spaced_2d(8);
        let sub = RadialSubdivision::from_directions(Point::<2>::zero(), 1.0, dirs, 1.0);
        // a point along direction 0 belongs to region 0
        let p = Point::new([0.5, 0.0]);
        assert!(sub.in_region(0, &p));
        assert_eq!(sub.owner(&p), 0);
        // beyond the radius: nobody's
        assert!(!sub.in_region(0, &Point::new([2.0, 0.0])));
        // the root belongs everywhere
        assert!(sub.in_region(3, &sub.root()));
    }

    #[test]
    fn radial_overlap_widens_cones() {
        let dirs = sphere::evenly_spaced_2d(8);
        let tight = RadialSubdivision::from_directions(Point::<2>::zero(), 1.0, dirs.clone(), 1.0);
        let wide = RadialSubdivision::from_directions(Point::<2>::zero(), 1.0, dirs, 2.0);
        // halfway between dir 0 and dir 1 (angle π/8 > π/8? exactly π/8 = half step)
        let a = std::f64::consts::PI / 8.0 + 0.05;
        let p = Point::new([a.cos(), a.sin()]) * 0.5;
        assert!(!tight.in_region(0, &p));
        assert!(wide.in_region(0, &p));
    }

    #[test]
    fn radial_knn_adjacency_is_angular() {
        let dirs = sphere::evenly_spaced_2d(8);
        let sub = RadialSubdivision::from_directions(Point::<2>::zero(), 1.0, dirs, 1.0);
        let adj = sub.knn_adjacency(2);
        assert_eq!(adj.len(), 8);
        let mut n0 = adj[0].clone();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 7]);
    }

    #[test]
    fn radial_sample_deterministic() {
        let a: RadialSubdivision<3> = RadialSubdivision::sample(Point::zero(), 1.0, 16, 1.5, 11);
        let b: RadialSubdivision<3> = RadialSubdivision::sample(Point::zero(), 1.0, 16, 1.5, 11);
        for i in 0..16 {
            assert_eq!(a.direction(i), b.direction(i));
        }
    }

    #[test]
    fn region_bbox_contains_target() {
        let sub: RadialSubdivision<3> = RadialSubdivision::sample(Point::zero(), 2.0, 32, 1.5, 3);
        for i in 0..32u32 {
            assert!(sub.region_bbox(i).contains(&sub.target(i)));
            assert!(sub.region_bbox(i).contains(&sub.root()));
        }
    }
}
