//! Axis-aligned bounding boxes with exact volume arithmetic.
//!
//! Exactness matters: the paper's theoretical model (§IV-B) predicts load
//! imbalance from the exact free-space volume `V_free` of each region, so
//! region ∩ obstacle volumes must not be approximated for box obstacles.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned box `[lo, hi]` in `D` dimensions.
///
/// Invariant: `lo[i] <= hi[i]` for all `i` (enforced by constructors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// Construct from two corners; coordinates are sorted per-axis so the
    /// result is always well-formed.
    pub fn new(a: Point<D>, b: Point<D>) -> Self {
        Aabb {
            lo: a.min(&b),
            hi: a.max(&b),
        }
    }

    /// The unit cube `[0, 1]^D`.
    pub fn unit() -> Self {
        Aabb {
            lo: Point::zero(),
            hi: Point::splat(1.0),
        }
    }

    /// A cube centered at `center` with the given side length.
    pub fn cube(center: Point<D>, side: f64) -> Self {
        let h = side.abs() / 2.0;
        Aabb {
            lo: center - Point::splat(h),
            hi: center + Point::splat(h),
        }
    }

    /// Lower corner.
    pub fn lo(&self) -> Point<D> {
        self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> Point<D> {
        self.hi
    }

    /// Center point.
    pub fn center(&self) -> Point<D> {
        (self.lo + self.hi) / 2.0
    }

    /// Per-axis extents (`hi - lo`).
    pub fn extents(&self) -> Point<D> {
        self.hi - self.lo
    }

    /// Exact volume (product of extents). Zero for degenerate boxes.
    pub fn volume(&self) -> f64 {
        let e = self.extents();
        let mut v = 1.0;
        for i in 0..D {
            v *= e[i];
        }
        v
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| p[i] >= self.lo[i] && p[i] <= self.hi[i])
    }

    /// True if `other` is fully contained in `self`.
    pub fn contains_box(&self, other: &Aabb<D>) -> bool {
        (0..D).all(|i| other.lo[i] >= self.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// True if the boxes overlap (closed-interval semantics: touching counts).
    pub fn intersects(&self, other: &Aabb<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && self.hi[i] >= other.lo[i])
    }

    /// Exact intersection box, or `None` if disjoint.
    pub fn intersection(&self, other: &Aabb<D>) -> Option<Aabb<D>> {
        let lo = self.lo.max(&other.lo);
        let hi = self.hi.min(&other.hi);
        if (0..D).all(|i| lo[i] <= hi[i]) {
            Some(Aabb { lo, hi })
        } else {
            None
        }
    }

    /// Exact volume of the intersection with `other` (zero when disjoint).
    pub fn intersection_volume(&self, other: &Aabb<D>) -> f64 {
        self.intersection(other).map_or(0.0, |b| b.volume())
    }

    /// The box grown by `margin` on every side (shrunk if negative), clamped
    /// so it never inverts.
    pub fn inflate(&self, margin: f64) -> Aabb<D> {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..D {
            let c = (lo[i] + hi[i]) / 2.0;
            lo[i] = (lo[i] - margin).min(c);
            hi[i] = (hi[i] + margin).max(c);
        }
        Aabb { lo, hi }
    }

    /// The box clipped to `bounds` (intersection, or a degenerate box at the
    /// nearest corner if fully outside).
    pub fn clip_to(&self, bounds: &Aabb<D>) -> Aabb<D> {
        match self.intersection(bounds) {
            Some(b) => b,
            None => {
                let c = self.center().max(&bounds.lo).min(&bounds.hi);
                Aabb { lo: c, hi: c }
            }
        }
    }

    /// Euclidean distance from `p` to the box (zero if inside).
    pub fn distance_to_point(&self, p: &Point<D>) -> f64 {
        self.distance_sq_to_point(p).sqrt()
    }

    /// Squared Euclidean distance from `p` to the box (zero inside). The
    /// sqrt-free form used by the collision broad-phase to reject far
    /// obstacles cheaply.
    pub fn distance_sq_to_point(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Signed distance: negative inside (distance to the nearest face),
    /// positive outside.
    pub fn signed_distance(&self, p: &Point<D>) -> f64 {
        if !self.contains(p) {
            return self.distance_to_point(p);
        }
        let mut inner = f64::INFINITY;
        for i in 0..D {
            inner = inner.min(p[i] - self.lo[i]).min(self.hi[i] - p[i]);
        }
        -inner
    }

    /// The smallest box containing both.
    pub fn union(&self, other: &Aabb<D>) -> Aabb<D> {
        Aabb {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// The point of the box nearest to `p`.
    pub fn clamp_point(&self, p: &Point<D>) -> Point<D> {
        p.max(&self.lo).min(&self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b2(lo: [f64; 2], hi: [f64; 2]) -> Aabb<2> {
        Aabb::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn constructor_sorts_corners() {
        let b = b2([1.0, 0.0], [0.0, 1.0]);
        assert_eq!(b.lo(), Point::new([0.0, 0.0]));
        assert_eq!(b.hi(), Point::new([1.0, 1.0]));
    }

    #[test]
    fn volume_and_extents() {
        let b = b2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.extents(), Point::new([2.0, 3.0]));
        assert_eq!(b.center(), Point::new([1.0, 1.5]));
    }

    #[test]
    fn cube_constructor() {
        let c: Aabb<3> = Aabb::cube(Point::splat(0.5), 0.4);
        assert!((c.volume() - 0.064).abs() < 1e-12);
        assert!(c.contains(&Point::splat(0.5)));
        assert!(!c.contains(&Point::splat(0.8)));
    }

    #[test]
    fn containment() {
        let b = b2([0.0, 0.0], [1.0, 1.0]);
        assert!(b.contains(&Point::new([0.5, 0.5])));
        assert!(b.contains(&Point::new([0.0, 1.0]))); // boundary counts
        assert!(!b.contains(&Point::new([1.1, 0.5])));
        assert!(b.contains_box(&b2([0.2, 0.2], [0.8, 0.8])));
        assert!(!b.contains_box(&b2([0.2, 0.2], [1.8, 0.8])));
    }

    #[test]
    fn intersection_volume_exact() {
        let a = b2([0.0, 0.0], [1.0, 1.0]);
        let b = b2([0.5, 0.5], [2.0, 2.0]);
        assert!((a.intersection_volume(&b) - 0.25).abs() < 1e-12);
        let c = b2([2.0, 2.0], [3.0, 3.0]);
        assert_eq!(a.intersection_volume(&c), 0.0);
        // touching boxes: zero-volume intersection but intersects() is true
        let d = b2([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection_volume(&d), 0.0);
    }

    #[test]
    fn inflate_and_clip() {
        let b = b2([0.4, 0.4], [0.6, 0.6]);
        let big = b.inflate(0.1);
        assert!((big.volume() - 0.16).abs() < 1e-12);
        let clipped = big.clip_to(&b2([0.0, 0.0], [0.5, 1.0]));
        assert!((clipped.hi()[0] - 0.5).abs() < 1e-12);
        // inflate never inverts
        let tiny = b.inflate(-10.0);
        assert!(tiny.volume() >= 0.0);
    }

    #[test]
    fn distances() {
        let b = b2([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(b.distance_to_point(&Point::new([0.5, 0.5])), 0.0);
        assert!((b.distance_to_point(&Point::new([2.0, 1.0])) - 1.0).abs() < 1e-12);
        assert!((b.distance_to_point(&Point::new([2.0, 2.0])) - 2f64.sqrt()).abs() < 1e-12);
        assert!((b.signed_distance(&Point::new([0.5, 0.5])) + 0.5).abs() < 1e-12);
        assert!((b.signed_distance(&Point::new([0.9, 0.5])) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn union_contains_both() {
        let a = b2([0.0, 0.0], [1.0, 1.0]);
        let b = b2([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
    }
}
