//! Fixed-dimension points/vectors.
//!
//! `Point<D>` is a thin wrapper over `[f64; D]` with value semantics. The
//! planning stack is generic over the workspace dimension `D` (the paper uses
//! 2-D for the theoretical model and 3-D for the cube/wall environments).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in `D`-dimensional Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point<const D: usize>(#[serde(with = "crate::array_serde")] pub [f64; D]);

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const D: usize> Point<D> {
    /// The origin.
    pub const fn zero() -> Self {
        Point([0.0; D])
    }

    /// A point with every coordinate equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Point([v; D])
    }

    /// Construct from coordinates.
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Coordinate array.
    pub fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// Dot product.
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.0[i] * other.0[i];
        }
        acc
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors.
    pub fn normalized(&self) -> Option<Self> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(*self / n)
        }
    }

    /// Linear interpolation: `self + t * (other - self)`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; `t` outside `[0, 1]`
    /// extrapolates.
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] + t * (other.0[i] - self.0[i]);
        }
        Point(out)
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].min(other.0[i]);
        }
        Point(out)
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].max(other.0[i]);
        }
        Point(out)
    }

    /// True if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Angle in radians between `self` and `other` treated as vectors.
    ///
    /// Returns `0.0` when either vector is (near-)zero.
    pub fn angle_to(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom <= f64::EPSILON {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    fn add(mut self, rhs: Self) -> Self {
        for i in 0..D {
            self.0[i] += rhs.0[i];
        }
        self
    }
}

impl<const D: usize> AddAssign for Point<D> {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] += rhs.0[i];
        }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    fn sub(mut self, rhs: Self) -> Self {
        for i in 0..D {
            self.0[i] -= rhs.0[i];
        }
        self
    }
}

impl<const D: usize> SubAssign for Point<D> {
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;
    fn mul(mut self, rhs: f64) -> Self {
        for i in 0..D {
            self.0[i] *= rhs;
        }
        self
    }
}

impl<const D: usize> Div<f64> for Point<D> {
    type Output = Self;
    fn div(mut self, rhs: f64) -> Self {
        for i in 0..D {
            self.0[i] /= rhs;
        }
        self
    }
}

impl<const D: usize> Neg for Point<D> {
    type Output = Self;
    fn neg(mut self) -> Self {
        for i in 0..D {
            self.0[i] = -self.0[i];
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Point::new([1.0, 2.0, 3.0]);
        let b = Point::new([4.0, 5.0, 6.0]);
        assert_eq!(a + b, Point::new([5.0, 7.0, 9.0]));
        assert_eq!(b - a, Point::new([3.0, 3.0, 3.0]));
        assert_eq!(a * 2.0, Point::new([2.0, 4.0, 6.0]));
        assert_eq!(b / 2.0, Point::new([2.0, 2.5, 3.0]));
        assert_eq!(-a, Point::new([-1.0, -2.0, -3.0]));
    }

    #[test]
    fn dot_and_norm() {
        let a = Point::new([3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        let b = Point::new([1.0, 0.0]);
        assert_eq!(a.dot(&b), 3.0);
    }

    #[test]
    fn dist_matches_sub_norm() {
        let a = Point::new([1.0, 2.0]);
        let b = Point::new([4.0, 6.0]);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!((a - b).norm(), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([2.0, 4.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new([1.0, 2.0]));
    }

    #[test]
    fn normalized_unit_and_zero() {
        let a = Point::new([0.0, 3.0]);
        let n = a.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(Point::<2>::zero().normalized().is_none());
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new([1.0, 5.0]);
        let b = Point::new([2.0, 3.0]);
        assert_eq!(a.min(&b), Point::new([1.0, 3.0]));
        assert_eq!(a.max(&b), Point::new([2.0, 5.0]));
    }

    #[test]
    fn angle_between_axes() {
        let x = Point::new([1.0, 0.0]);
        let y = Point::new([0.0, 1.0]);
        assert!((x.angle_to(&y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((x.angle_to(&x)).abs() < 1e-6);
        assert!((x.angle_to(&-x) - std::f64::consts::PI).abs() < 1e-12);
    }
}
