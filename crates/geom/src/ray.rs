//! Ray casting against primitive obstacles.
//!
//! Used by the RRT k-random-rays work estimate (§III-B of the paper): cast
//! `k` rays from a region's apex and use the minimum obstacle distance as an
//! (intentionally imperfect) proxy for reachable free space.

use crate::aabb::Aabb;
use crate::point::Point;

/// A ray `origin + t * dir`, `t >= 0`. `dir` need not be normalized; reported
/// hit parameters are in units of `|dir|`.
#[derive(Debug, Clone, Copy)]
pub struct Ray<const D: usize> {
    pub origin: Point<D>,
    pub dir: Point<D>,
}

impl<const D: usize> Ray<D> {
    pub fn new(origin: Point<D>, dir: Point<D>) -> Self {
        Ray { origin, dir }
    }

    /// Point at parameter `t`.
    pub fn at(&self, t: f64) -> Point<D> {
        self.origin + self.dir * t
    }

    /// Smallest `t >= 0` where the ray enters `bb`, or `None` if it misses.
    /// Returns `Some(0.0)` when the origin is already inside.
    pub fn hit_aabb(&self, bb: &Aabb<D>) -> Option<f64> {
        let mut tmin: f64 = 0.0;
        let mut tmax = f64::INFINITY;
        for i in 0..D {
            let o = self.origin[i];
            let d = self.dir[i];
            let (lo, hi) = (bb.lo()[i], bb.hi()[i]);
            if d.abs() < 1e-300 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (t0, t1) = {
                    let a = (lo - o) * inv;
                    let b = (hi - o) * inv;
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                tmin = tmin.max(t0);
                tmax = tmax.min(t1);
                if tmin > tmax {
                    return None;
                }
            }
        }
        Some(tmin)
    }

    /// Smallest `t >= 0` where the ray hits the sphere surface, or `None`.
    /// Returns `Some(0.0)` when the origin is inside the sphere.
    pub fn hit_sphere(&self, center: &Point<D>, radius: f64) -> Option<f64> {
        let oc = self.origin - *center;
        if oc.norm() <= radius {
            return Some(0.0);
        }
        let a = self.dir.norm_sq();
        if a < 1e-300 {
            return None;
        }
        let b = 2.0 * oc.dot(&self.dir);
        let c = oc.norm_sq() - radius * radius;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t0 = (-b - sq) / (2.0 * a);
        let t1 = (-b + sq) / (2.0 * a);
        if t0 >= 0.0 {
            Some(t0)
        } else if t1 >= 0.0 {
            Some(t1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_hits_box_frontally() {
        let r: Ray<2> = Ray::new(Point::new([-1.0, 0.5]), Point::new([1.0, 0.0]));
        let bb = Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let t = r.hit_aabb(&bb).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ray_misses_box() {
        let r: Ray<2> = Ray::new(Point::new([-1.0, 2.0]), Point::new([1.0, 0.0]));
        let bb = Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        assert!(r.hit_aabb(&bb).is_none());
        // pointing away
        let r2: Ray<2> = Ray::new(Point::new([-1.0, 0.5]), Point::new([-1.0, 0.0]));
        assert!(r2.hit_aabb(&bb).is_none());
    }

    #[test]
    fn origin_inside_box_is_zero() {
        let r: Ray<2> = Ray::new(Point::new([0.5, 0.5]), Point::new([1.0, 0.0]));
        let bb = Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        assert_eq!(r.hit_aabb(&bb), Some(0.0));
    }

    #[test]
    fn axis_parallel_ray_inside_slab() {
        // dir has a zero component; origin is within that slab
        let r: Ray<3> = Ray::new(Point::new([-2.0, 0.5, 0.5]), Point::new([1.0, 0.0, 0.0]));
        let bb = Aabb::new(Point::zero(), Point::splat(1.0));
        assert!((r.hit_aabb(&bb).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_hits() {
        let r: Ray<2> = Ray::new(Point::new([-2.0, 0.0]), Point::new([1.0, 0.0]));
        let t = r.hit_sphere(&Point::zero(), 1.0).unwrap();
        assert!((t - 1.0).abs() < 1e-9);
        assert!(r.hit_sphere(&Point::new([0.0, 3.0]), 1.0).is_none());
        // origin inside
        let r2: Ray<2> = Ray::new(Point::zero(), Point::new([1.0, 0.0]));
        assert_eq!(r2.hit_sphere(&Point::zero(), 1.0), Some(0.0));
    }
}
