//! Workspace obstacles.
//!
//! Two primitive shapes cover every environment in the paper's evaluation:
//! axis-aligned boxes (cubes, walls, clutter) and spheres. Boxes support
//! **exact** region-intersection volumes, which the theoretical model needs.

use crate::aabb::Aabb;
use crate::convex::ConvexPolytope;
use crate::point::Point;
use crate::ray::Ray;
use serde::{Deserialize, Serialize};

/// A solid obstacle in the workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Obstacle<const D: usize> {
    /// Axis-aligned solid box.
    Box(Aabb<D>),
    /// Solid sphere.
    Sphere { center: Point<D>, radius: f64 },
    /// Bounded convex polytope (e.g. a rotated wall). Distance queries use
    /// the polytope's halfspace lower bound, which makes clearance-based
    /// validity *conservative* (never accepts a colliding configuration).
    Convex(ConvexPolytope<D>),
}

impl<const D: usize> Obstacle<D> {
    /// True if `p` is inside (or on the surface of) the obstacle.
    pub fn contains(&self, p: &Point<D>) -> bool {
        match self {
            Obstacle::Box(bb) => bb.contains(p),
            Obstacle::Sphere { center, radius } => p.dist(center) <= *radius,
            Obstacle::Convex(c) => c.contains(p),
        }
    }

    /// Euclidean distance from `p` to the obstacle surface; zero inside.
    pub fn distance(&self, p: &Point<D>) -> f64 {
        match self {
            Obstacle::Box(bb) => bb.distance_to_point(p),
            Obstacle::Sphere { center, radius } => (p.dist(center) - radius).max(0.0),
            Obstacle::Convex(c) => c.distance_lower_bound(p),
        }
    }

    /// Bounding box of the obstacle.
    pub fn bounding_box(&self) -> Aabb<D> {
        match self {
            Obstacle::Box(bb) => *bb,
            Obstacle::Sphere { center, radius } => Aabb::new(
                *center - Point::splat(*radius),
                *center + Point::splat(*radius),
            ),
            Obstacle::Convex(c) => c.bounding_box(),
        }
    }

    /// Exact obstacle volume.
    pub fn volume(&self) -> f64 {
        match self {
            Obstacle::Box(bb) => bb.volume(),
            Obstacle::Sphere { radius, .. } => sphere_volume::<D>(*radius),
            Obstacle::Convex(c) => c.volume_estimate(24),
        }
    }

    /// Volume of the obstacle intersected with `region`.
    ///
    /// Exact for boxes. For spheres a deterministic stratified-grid estimate
    /// is used (`grid_res` points per axis, default 16 via
    /// [`Obstacle::volume_in`]).
    pub fn volume_in_with_res(&self, region: &Aabb<D>, grid_res: usize) -> f64 {
        match self {
            Obstacle::Box(bb) => bb.intersection_volume(region),
            Obstacle::Convex(c) => {
                let clip = match region.intersection(&c.bounding_box()) {
                    Some(cl) => cl,
                    None => return 0.0,
                };
                // stratified midpoint grid over the clipped region
                let n = grid_res.max(2);
                let ext = clip.extents();
                let mut idx = vec![0usize; D];
                let mut inside = 0usize;
                let mut total = 0usize;
                loop {
                    let mut p = clip.lo();
                    for i in 0..D {
                        p[i] += ext[i] * ((idx[i] as f64 + 0.5) / n as f64);
                    }
                    total += 1;
                    if c.contains(&p) {
                        inside += 1;
                    }
                    let mut i = 0;
                    loop {
                        if i == D {
                            return clip.volume() * inside as f64 / total as f64;
                        }
                        idx[i] += 1;
                        if idx[i] < n {
                            break;
                        }
                        idx[i] = 0;
                        i += 1;
                    }
                }
            }
            Obstacle::Sphere { center, radius } => {
                let clip = match region.intersection(&self.bounding_box()) {
                    Some(c) => c,
                    None => return 0.0,
                };
                let n = grid_res.max(2);
                let ext = clip.extents();
                let mut inside = 0usize;
                let mut total = 1usize;
                for i in 0..D {
                    let _ = i;
                    total *= n;
                }
                // Stratified midpoint grid: deterministic and unbiased enough
                // for sphere obstacles (only used in clutter environments).
                let mut idx = vec![0usize; D];
                loop {
                    let mut p = clip.lo();
                    for i in 0..D {
                        p[i] += ext[i] * ((idx[i] as f64 + 0.5) / n as f64);
                    }
                    if p.dist(center) <= *radius {
                        inside += 1;
                    }
                    // odometer increment
                    let mut i = 0;
                    loop {
                        if i == D {
                            return clip.volume() * inside as f64 / total as f64;
                        }
                        idx[i] += 1;
                        if idx[i] < n {
                            break;
                        }
                        idx[i] = 0;
                        i += 1;
                    }
                }
            }
        }
    }

    /// Volume of the obstacle intersected with `region` (16 grid points per
    /// axis for spheres; exact for boxes).
    pub fn volume_in(&self, region: &Aabb<D>) -> f64 {
        self.volume_in_with_res(region, 16)
    }

    /// Smallest `t >= 0` at which `ray` hits this obstacle.
    pub fn ray_hit(&self, ray: &Ray<D>) -> Option<f64> {
        match self {
            Obstacle::Box(bb) => ray.hit_aabb(bb),
            Obstacle::Sphere { center, radius } => ray.hit_sphere(center, *radius),
            Obstacle::Convex(c) => c.ray_hit(ray),
        }
    }
}

/// Volume of a `D`-ball of the given radius (exact for D <= 3, recurrence for
/// higher dimensions).
pub fn sphere_volume<const D: usize>(radius: f64) -> f64 {
    // V_d(r) = r^d * pi^(d/2) / Gamma(d/2 + 1), via the standard recurrence
    // V_0 = 1, V_1 = 2r, V_d = (2 pi r^2 / d) V_{d-2}.
    let mut v = [1.0, 2.0 * radius];
    if D == 0 {
        return 1.0;
    }
    if D == 1 {
        return v[1];
    }
    let mut d = 2;
    let mut cur = 0.0;
    while d <= D {
        cur = 2.0 * std::f64::consts::PI * radius * radius / d as f64 * v[d % 2];
        v[d % 2] = cur;
        d += 1;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_contains_and_distance() {
        let o: Obstacle<2> = Obstacle::Box(Aabb::new(Point::zero(), Point::splat(1.0)));
        assert!(o.contains(&Point::splat(0.5)));
        assert!(!o.contains(&Point::splat(1.5)));
        assert!((o.distance(&Point::new([2.0, 0.5])) - 1.0).abs() < 1e-12);
        assert_eq!(o.distance(&Point::splat(0.5)), 0.0);
    }

    #[test]
    fn sphere_contains_and_distance() {
        let o: Obstacle<3> = Obstacle::Sphere {
            center: Point::zero(),
            radius: 1.0,
        };
        assert!(o.contains(&Point::new([0.5, 0.0, 0.0])));
        assert!(!o.contains(&Point::new([1.5, 0.0, 0.0])));
        assert!((o.distance(&Point::new([3.0, 0.0, 0.0])) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn box_volume_in_region_exact() {
        let o: Obstacle<2> = Obstacle::Box(Aabb::new(Point::zero(), Point::splat(1.0)));
        let region = Aabb::new(Point::new([0.5, 0.5]), Point::new([2.0, 2.0]));
        assert!((o.volume_in(&region) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sphere_volume_formula() {
        assert!((sphere_volume::<2>(1.0) - std::f64::consts::PI).abs() < 1e-12);
        assert!((sphere_volume::<3>(1.0) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
        assert!((sphere_volume::<1>(2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_volume_in_region_estimate() {
        let o: Obstacle<2> = Obstacle::Sphere {
            center: Point::splat(0.5),
            radius: 0.4,
        };
        let region = Aabb::unit();
        let est = o.volume_in_with_res(&region, 64);
        let exact = std::f64::consts::PI * 0.4 * 0.4;
        assert!(
            (est - exact).abs() / exact < 0.02,
            "est {est} vs exact {exact}"
        );
        // Disjoint region.
        let far = Aabb::new(Point::splat(5.0), Point::splat(6.0));
        assert_eq!(o.volume_in(&far), 0.0);
    }

    #[test]
    fn ray_hit_dispatch() {
        let bx: Obstacle<2> = Obstacle::Box(Aabb::new(Point::zero(), Point::splat(1.0)));
        let r = Ray::new(Point::new([-1.0, 0.5]), Point::new([1.0, 0.0]));
        assert!((bx.ray_hit(&r).unwrap() - 1.0).abs() < 1e-12);
        let sp: Obstacle<2> = Obstacle::Sphere {
            center: Point::new([3.0, 0.5]),
            radius: 0.5,
        };
        assert!((sp.ray_hit(&r).unwrap() - 3.5).abs() < 1e-9);
    }
}
