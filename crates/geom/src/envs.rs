//! Constructors for every environment used in the paper's evaluation.
//!
//! | Name | Paper section | Blocked fraction |
//! |---|---|---|
//! | `model_env` | §IV-B theoretical model | configurable (2-D, one square) |
//! | `med_cube` | §IV-C.1 | ~24 % (3-D, one centered cube) |
//! | `small_cube` | §IV-C.1 | ~6 % |
//! | `free_env` | §IV-C.1 / Fig. 8(c), 10(c) | 0 % |
//! | `mixed` | §IV-C.2 / Fig. 10(a) | ~60 % (random clutter) |
//! | `mixed_30` | §IV-C.2 / Fig. 10(b) | ~30 % |
//! | `walls` | Fig. 8 captions / examples | narrow passages between walls |

use crate::aabb::Aabb;
use crate::convex::{ConvexPolytope, Halfspace};
use crate::environment::Environment;
use crate::obstacle::Obstacle;
use crate::point::Point;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The 2-D model environment of §IV-B: a unit square workspace with a single
/// square obstacle centered in it (equidistant from the bounding box),
/// blocking `blocked_fraction` of the total area.
pub fn model_env(blocked_fraction: f64) -> Environment<2> {
    let frac = blocked_fraction.clamp(0.0, 1.0);
    let side = frac.sqrt();
    let obstacles = if side > 0.0 {
        vec![Obstacle::Box(Aabb::cube(Point::splat(0.5), side))]
    } else {
        vec![]
    };
    Environment::new("model", Aabb::unit(), obstacles, true)
}

/// A 3-D unit cube with a single centered cubic obstacle blocking `frac` of
/// the volume (the paper's cube-environment family).
pub fn cube_env(name: &str, frac: f64) -> Environment<3> {
    let frac = frac.clamp(0.0, 1.0);
    let side = frac.powf(1.0 / 3.0);
    let obstacles = if side > 0.0 {
        vec![Obstacle::Box(Aabb::cube(Point::splat(0.5), side))]
    } else {
        vec![]
    };
    Environment::new(name, Aabb::unit(), obstacles, true)
}

/// `med-cube`: roughly 24 % of the environment blocked.
pub fn med_cube() -> Environment<3> {
    cube_env("med-cube", 0.24)
}

/// `small-cube`: roughly 6 % blocked.
pub fn small_cube() -> Environment<3> {
    cube_env("small-cube", 0.06)
}

/// `free`: completely obstacle-free 3-D environment.
pub fn free_env() -> Environment<3> {
    Environment::free_space("free", Aabb::unit())
}

/// Cluttered environment of randomly placed axis-aligned boxes totalling
/// approximately `blocked_fraction` of the volume (obstacles may overlap, so
/// the achieved fraction is validated by estimate and topped up).
///
/// This reproduces the paper's `mixed` (60 % blocked) and `mixed-30` (30 %)
/// RRT environments. A central free bubble of radius `free_core` around the
/// workspace center is kept clear so the RRT root is always valid. Obstacle
/// density *increases along the x axis* (heterogeneous clutter): directions
/// into the dense side do far less tree growth than directions into the
/// open side, which is the load imbalance Figure 10 studies.
pub fn clutter_env(
    name: &str,
    blocked_fraction: f64,
    obstacle_scale: f64,
    free_core: f64,
    seed: u64,
) -> Environment<3> {
    let bounds = Aabb::<3>::unit();
    let target = blocked_fraction.clamp(0.0, 0.95);
    let mut rng = StdRng::seed_from_u64(seed);
    let center = bounds.center();
    let mut obstacles: Vec<Obstacle<3>> = Vec::new();
    let mut env = Environment::new(name, bounds, obstacles.clone(), false);
    // Place boxes until the estimated blocked fraction reaches the target.
    // Boxes are biased away from the free core so a planner rooted at the
    // center always has somewhere to start.
    let mut attempts = 0;
    while env.blocked_fraction() < target && attempts < 10_000 {
        attempts += 1;
        let side = obstacle_scale * rng.random_range(0.5..1.5);
        let mut c = Point::<3>::zero();
        // density gradient: pdf ∝ 3x² along the first axis
        c[0] = rng.random_range(0.0f64..1.0).cbrt();
        for i in 1..3 {
            c[i] = rng.random_range(0.0..1.0);
        }
        if c.dist(&center) < free_core + side {
            continue;
        }
        obstacles.push(Obstacle::Box(Aabb::cube(c, side).clip_to(&bounds)));
        env = Environment::new(name, bounds, obstacles.clone(), false);
    }
    env
}

/// `mixed`: ~60 % blocked clutter (paper Fig. 10(a)).
pub fn mixed() -> Environment<3> {
    clutter_env("mixed", 0.60, 0.14, 0.08, 0x6d69_7865)
}

/// `mixed-30`: ~30 % blocked clutter (paper Fig. 10(b)).
pub fn mixed_30() -> Environment<3> {
    clutter_env("mixed-30", 0.30, 0.14, 0.08, 0x6d78_3330)
}

/// Narrow-passage walls: `n_walls` full-height walls perpendicular to the x
/// axis, each pierced by one gap of width `gap`, gaps alternating between the
/// bottom and top of the workspace. A classic heterogeneous environment
/// (house/factory-floor analogue from §III).
pub fn walls(n_walls: usize, wall_thickness: f64, gap: f64) -> Environment<3> {
    let bounds = Aabb::<3>::unit();
    let mut obstacles = Vec::new();
    for w in 0..n_walls {
        let x = (w + 1) as f64 / (n_walls + 1) as f64;
        let x0 = (x - wall_thickness / 2.0).max(0.0);
        let x1 = (x + wall_thickness / 2.0).min(1.0);
        // Gap along y at the bottom for even walls, top for odd walls; the
        // wall spans the full z extent, split into two boxes around the gap.
        let (gap_lo, gap_hi) = if w % 2 == 0 {
            (0.0, gap)
        } else {
            (1.0 - gap, 1.0)
        };
        if gap_lo > 0.0 {
            obstacles.push(Obstacle::Box(Aabb::new(
                Point::new([x0, 0.0, 0.0]),
                Point::new([x1, gap_lo, 1.0]),
            )));
        }
        if gap_hi < 1.0 {
            obstacles.push(Obstacle::Box(Aabb::new(
                Point::new([x0, gap_hi, 0.0]),
                Point::new([x1, 1.0, 1.0]),
            )));
        }
    }
    Environment::new("walls", bounds, obstacles, true)
}

/// `walls-45`: diagonal walls (normals at 45° to the subdivision axes),
/// each pierced by one gap along z, alternating bottom/top — the rotated
/// variant named in the paper's Figure 8 captions. Rotated walls
/// misalign with every axis-aligned region boundary, so more regions are
/// partially blocked and the work distribution is even more heterogeneous
/// than for axis-aligned `walls`.
pub fn walls_45(n_walls: usize, wall_thickness: f64, gap: f64) -> Environment<3> {
    let bounds = Aabb::<3>::unit();
    let axis = Point::new([1.0, 1.0, 0.0]);
    let mut obstacles = Vec::new();
    for w in 0..n_walls {
        // wall plane: x + y = c, spread across the diagonal of the unit box
        let t = (w + 1) as f64 / (n_walls + 1) as f64;
        let center = Point::new([t, t, 0.5]);
        let slab = ConvexPolytope::slab(center, axis, wall_thickness, bounds);
        // gap along z: alternate bottom/top; wall = slab minus the gap band,
        // expressed as two clipped polytopes
        let (gap_lo, gap_hi) = if w % 2 == 0 {
            (0.0, gap)
        } else {
            (1.0 - gap, 1.0)
        };
        let z = Point::new([0.0, 0.0, 1.0]);
        if gap_lo > 0.0 {
            // z <= gap_lo part
            obstacles.push(Obstacle::Convex(
                slab.clone().with_halfspace(Halfspace::new(z, gap_lo)),
            ));
        }
        if gap_hi < 1.0 {
            // z >= gap_hi part
            obstacles.push(Obstacle::Convex(
                slab.clone().with_halfspace(Halfspace::new(-z, -gap_hi)),
            ));
        }
    }
    Environment::new("walls-45", bounds, obstacles, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_env_fraction_exact() {
        let env = model_env(0.25);
        assert!((env.blocked_fraction() - 0.25).abs() < 1e-12);
        assert!((model_env(0.0).blocked_fraction()).abs() < 1e-12);
    }

    #[test]
    fn cube_envs_hit_paper_fractions() {
        assert!((med_cube().blocked_fraction() - 0.24).abs() < 1e-9);
        assert!((small_cube().blocked_fraction() - 0.06).abs() < 1e-9);
        assert_eq!(free_env().blocked_fraction(), 0.0);
    }

    #[test]
    fn cube_env_obstacle_is_centered() {
        let env = med_cube();
        assert!(!env.is_valid(&Point::splat(0.5), 0.0));
        assert!(env.is_valid(&Point::splat(0.05), 0.0));
    }

    #[test]
    fn mixed_envs_reach_target_fractions() {
        let m = mixed();
        assert!(
            (0.5..0.72).contains(&m.blocked_fraction()),
            "mixed blocked fraction {}",
            m.blocked_fraction()
        );
        let m30 = mixed_30();
        assert!(
            (0.22..0.40).contains(&m30.blocked_fraction()),
            "mixed-30 blocked fraction {}",
            m30.blocked_fraction()
        );
        // the free core keeps the center valid
        assert!(m.is_valid(&Point::splat(0.5), 0.0));
        assert!(m30.is_valid(&Point::splat(0.5), 0.0));
    }

    #[test]
    fn clutter_is_deterministic() {
        let a = clutter_env("a", 0.3, 0.15, 0.1, 99);
        let b = clutter_env("b", 0.3, 0.15, 0.1, 99);
        assert_eq!(a.obstacles().len(), b.obstacles().len());
    }

    #[test]
    fn walls_have_passages() {
        let env = walls(3, 0.05, 0.2);
        // inside the first wall body -> blocked
        assert!(!env.is_valid(&Point::new([0.25, 0.5, 0.5]), 0.0));
        // inside the first wall's gap (bottom) -> free
        assert!(env.is_valid(&Point::new([0.25, 0.1, 0.5]), 0.0));
        // second wall gap is at the top
        assert!(env.is_valid(&Point::new([0.5, 0.9, 0.5]), 0.0));
        assert!(!env.is_valid(&Point::new([0.5, 0.1, 0.5]), 0.0));
    }

    #[test]
    fn walls_45_structure() {
        let env = walls_45(2, 0.08, 0.2);
        // first wall crosses x + y = 2/3 (gap at the bottom, z < 0.2)
        let on_wall = Point::new([0.33, 0.33, 0.6]);
        assert!(
            !env.is_valid(&on_wall, 0.0),
            "diagonal wall body must block"
        );
        let in_gap = Point::new([0.33, 0.33, 0.1]);
        assert!(env.is_valid(&in_gap, 0.0), "gap must be free");
        // off the diagonal band: free
        assert!(env.is_valid(&Point::new([0.9, 0.05, 0.6]), 0.0));
        // second wall (x + y = 4/3) gap is at the top
        assert!(!env.is_valid(&Point::new([0.66, 0.67, 0.5]), 0.0));
        assert!(env.is_valid(&Point::new([0.66, 0.67, 0.95]), 0.0));
        // blocked fraction sane (two thin diagonal walls)
        let f = env.blocked_fraction();
        assert!((0.05..0.30).contains(&f), "blocked {f}");
    }

    #[test]
    fn walls_blocked_fraction_reasonable() {
        let env = walls(3, 0.05, 0.2);
        let f = env.blocked_fraction();
        // 3 walls × 5 % thickness × 80 % height = 12 %
        assert!((f - 0.12).abs() < 1e-9, "blocked {f}");
    }
}
