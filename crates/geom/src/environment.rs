//! Workspace environments: bounds + obstacles + geometric queries.

use crate::aabb::Aabb;
use crate::batch::BatchEnv;
use crate::obstacle::Obstacle;
use crate::point::Point;
use crate::ray::Ray;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A motion-planning workspace: a bounding box and a set of solid obstacles.
///
/// ```
/// use smp_geom::{envs, Point};
/// let env = envs::med_cube();
/// assert!(env.is_valid(&Point::splat(0.05), 0.0));   // corner: free
/// assert!(!env.is_valid(&Point::splat(0.5), 0.0));   // center: obstacle
/// assert!((env.blocked_fraction() - 0.24).abs() < 1e-9);
/// ```
///
/// The robot model used throughout the reproduction is a ball of radius `r`
/// in `R^D` (see DESIGN.md for why this substitution preserves the paper's
/// load-balance behaviour); validity queries therefore take a clearance
/// radius.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Environment<const D: usize> {
    name: String,
    bounds: Aabb<D>,
    obstacles: Vec<Obstacle<D>>,
    /// True when the obstacles are known to be pairwise disjoint, enabling
    /// exact free-volume computation by summation.
    disjoint_obstacles: bool,
    /// Broad-phase acceleration structure; see [`BroadEntry`].
    broad: Vec<BroadEntry<D>>,
    /// Lazily-built SoA mirror of `broad` for the batch kernels (see
    /// [`crate::batch`]). Skipped by serde and rebuilt on first use, so every
    /// construction path — including deserialization — gets it for free.
    #[serde(skip, default)]
    batch: OnceLock<BatchEnv<D>>,
}

/// One broad-phase record, ordered by descending bounding-box volume (large
/// obstacles are the likeliest to reject a sample, so checking them first
/// makes `is_valid`'s early exit cheapest). Box and sphere obstacles carry
/// their defining geometry inline, turning validity testing into a flat,
/// cache-friendly scan that never dereferences the obstacle list.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BroadEntry<const D: usize> {
    idx: u32,
    phase: BroadPhase<D>,
}

/// How an obstacle's validity contribution is decided.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum BroadPhase<const D: usize> {
    /// A box: its exact Euclidean distance is the AABB distance, and
    /// containment is exactly `distance == 0`, so one distance evaluation
    /// settles both halves of the validity predicate.
    Box(Aabb<D>),
    /// A sphere: `(|p - center| - radius).max(0)` is the exact distance and
    /// zero iff contained — again one evaluation.
    Sphere { center: Point<D>, radius: f64 },
    /// Convex polytopes always take the narrow phase: their `distance` is a
    /// *conservative halfspace lower bound* that can undercut any bounding
    /// geometry, so no precomputed test can stand in for it.
    Narrow,
}

fn broad_phase<const D: usize>(obstacles: &[Obstacle<D>]) -> Vec<BroadEntry<D>> {
    let mut order: Vec<(f64, u32)> = obstacles
        .iter()
        .enumerate()
        .map(|(i, o)| (o.bounding_box().volume(), i as u32))
        .collect();
    // deterministic order: volume descending, original index on ties
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    order
        .into_iter()
        .map(|(_, idx)| {
            let phase = match &obstacles[idx as usize] {
                Obstacle::Box(bb) => BroadPhase::Box(*bb),
                Obstacle::Sphere { center, radius } => BroadPhase::Sphere {
                    center: *center,
                    radius: *radius,
                },
                Obstacle::Convex(_) => BroadPhase::Narrow,
            };
            BroadEntry { idx, phase }
        })
        .collect()
}

impl<const D: usize> Environment<D> {
    /// New environment. `disjoint` should be true only when the caller
    /// guarantees obstacles do not overlap each other.
    pub fn new(
        name: impl Into<String>,
        bounds: Aabb<D>,
        obstacles: Vec<Obstacle<D>>,
        disjoint: bool,
    ) -> Self {
        let broad = broad_phase(&obstacles);
        Environment {
            name: name.into(),
            bounds,
            obstacles,
            disjoint_obstacles: disjoint,
            broad,
            batch: OnceLock::new(),
        }
    }

    /// The SoA batch mirror of the broad phase, built on first use. The
    /// builder walks `broad` in order, so both layouts share the
    /// volume-descending obstacle order.
    fn batch(&self) -> &BatchEnv<D> {
        self.batch.get_or_init(|| {
            let mut boxes = Vec::new();
            let mut spheres = Vec::new();
            let mut narrow = Vec::new();
            for e in &self.broad {
                match &e.phase {
                    BroadPhase::Box(bb) => boxes.push(*bb),
                    BroadPhase::Sphere { center, radius } => spheres.push((*center, *radius)),
                    BroadPhase::Narrow => narrow.push(e.idx),
                }
            }
            BatchEnv::from_parts(boxes, spheres, narrow)
        })
    }

    /// Obstacle-free environment.
    pub fn free_space(name: impl Into<String>, bounds: Aabb<D>) -> Self {
        Self::new(name, bounds, Vec::new(), true)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn bounds(&self) -> &Aabb<D> {
        &self.bounds
    }

    pub fn obstacles(&self) -> &[Obstacle<D>] {
        &self.obstacles
    }

    /// True when obstacles are declared pairwise disjoint.
    pub fn has_disjoint_obstacles(&self) -> bool {
        self.disjoint_obstacles
    }

    /// Is the ball of radius `clearance` centered at `p` inside the bounds
    /// and collision-free?
    ///
    /// Routed through the SoA batch kernel ([`crate::batch`]): boxes and
    /// spheres are tested four obstacles per step with per-lane scalar
    /// decisions, so the verdict is bit-identical to [`Self::is_valid_scalar`]
    /// (proven by differential tests); only convex polytopes pay for the
    /// narrow phase.
    pub fn is_valid(&self, p: &Point<D>, clearance: f64) -> bool {
        if !self.bounds.contains(p) {
            return false;
        }
        let c2 = clearance * clearance * (1.0 + 1e-15);
        let batch = self.batch();
        if !batch.boxes_spheres_valid(p, clearance, c2) {
            return false;
        }
        for &idx in batch.narrow_indices() {
            let o = &self.obstacles[idx as usize];
            if o.contains(p) || o.distance(p) < clearance {
                return false;
            }
        }
        true
    }

    /// Index of the first point in `pts` that fails `is_valid`, or `None`
    /// when all pass. Decision-identical to calling [`Self::is_valid`] on
    /// each point in order, but batched four points at a time against the
    /// SoA obstacle arrays — the local planner's edge checks go through here.
    pub fn first_invalid(&self, pts: &[Point<D>], clearance: f64) -> Option<usize> {
        self.batch()
            .first_invalid(&self.bounds, &self.obstacles, pts, clearance)
    }

    /// Scalar reference implementation of [`Self::is_valid`]: the verbatim
    /// pre-batch loop over the inline broad-phase entries, kept as the
    /// baseline for benchmarks and the differential oracle the batch kernels
    /// are proven against.
    ///
    /// Broad-phase: boxes and spheres are decided by a single exact distance
    /// evaluation over an inline, volume-descending entry array (their
    /// containment test is exactly `distance == 0`); only convex polytopes
    /// pay for the narrow phase. The result is identical to testing every
    /// obstacle with `contains` + `distance`.
    pub fn is_valid_scalar(&self, p: &Point<D>, clearance: f64) -> bool {
        if !self.bounds.contains(p) {
            return false;
        }
        // Sqrt-free fast reject for boxes: if the squared distance strictly
        // exceeds clearance² (inflated by one ulp so float rounding of the
        // product cannot flip the comparison), the real distance strictly
        // exceeds the clearance, and the correctly-rounded sqrt the exact
        // predicate would compute is >= clearance — same verdict, no sqrt.
        let c2 = clearance * clearance * (1.0 + 1e-15);
        for e in &self.broad {
            let invalid = match &e.phase {
                BroadPhase::Box(bb) => {
                    let sq = bb.distance_sq_to_point(p);
                    if sq > c2 {
                        false
                    } else {
                        let d = sq.sqrt();
                        d == 0.0 || d < clearance
                    }
                }
                BroadPhase::Sphere { center, radius } => {
                    let d = (p.dist(center) - radius).max(0.0);
                    d == 0.0 || d < clearance
                }
                BroadPhase::Narrow => {
                    let o = &self.obstacles[e.idx as usize];
                    o.contains(p) || o.distance(p) < clearance
                }
            };
            if invalid {
                return false;
            }
        }
        true
    }

    /// Minimum distance from `p` to any obstacle surface (infinity when there
    /// are no obstacles). Zero inside an obstacle.
    ///
    /// Box and sphere distances come straight from the inline broad-phase
    /// entries (they are exact), and the fold exits at 0.0 as soon as a
    /// containing obstacle is found — the minimum of non-negative distances
    /// cannot improve on zero.
    pub fn clearance(&self, p: &Point<D>) -> f64 {
        let mut best = f64::INFINITY;
        for e in &self.broad {
            let d = match &e.phase {
                BroadPhase::Box(bb) => bb.distance_to_point(p),
                BroadPhase::Sphere { center, radius } => (p.dist(center) - radius).max(0.0),
                BroadPhase::Narrow => self.obstacles[e.idx as usize].distance(p),
            };
            if d < best {
                best = d;
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
        best
    }

    /// Distance along `ray` to the first obstacle hit, clipped at `max_t`.
    ///
    /// This is the primitive behind the paper's RRT "k random rays" work
    /// estimate (§III-B).
    pub fn ray_cast(&self, ray: &Ray<D>, max_t: f64) -> f64 {
        self.obstacles
            .iter()
            .filter_map(|o| o.ray_hit(ray))
            .fold(max_t, f64::min)
    }

    /// Exact obstacle volume inside `region` (requires disjoint obstacles;
    /// falls back to a stratified estimate otherwise).
    pub fn obstacle_volume_in(&self, region: &Aabb<D>) -> f64 {
        if self.disjoint_obstacles {
            self.obstacles.iter().map(|o| o.volume_in(region)).sum()
        } else {
            self.obstacle_volume_in_estimate(region, 12)
        }
    }

    /// Stratified midpoint-grid estimate of obstacle volume inside `region`
    /// (`res` points per axis); handles overlapping obstacles correctly.
    pub fn obstacle_volume_in_estimate(&self, region: &Aabb<D>, res: usize) -> f64 {
        if self.obstacles.is_empty() {
            return 0.0;
        }
        let n = res.max(2);
        let ext = region.extents();
        let mut idx = vec![0usize; D];
        let mut inside = 0usize;
        let mut total = 0usize;
        loop {
            let mut p = region.lo();
            for i in 0..D {
                p[i] += ext[i] * ((idx[i] as f64 + 0.5) / n as f64);
            }
            total += 1;
            if self.obstacles.iter().any(|o| o.contains(&p)) {
                inside += 1;
            }
            let mut i = 0;
            loop {
                if i == D {
                    return region.volume() * inside as f64 / total as f64;
                }
                idx[i] += 1;
                if idx[i] < n {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }

    /// Free-space volume inside `region` (region ∩ bounds minus obstacles).
    pub fn free_volume_in(&self, region: &Aabb<D>) -> f64 {
        let clipped = match region.intersection(&self.bounds) {
            Some(c) => c,
            None => return 0.0,
        };
        (clipped.volume() - self.obstacle_volume_in(&clipped)).max(0.0)
    }

    /// Fraction of the whole workspace volume that is blocked by obstacles.
    pub fn blocked_fraction(&self) -> f64 {
        let v = self.bounds.volume();
        if v <= 0.0 {
            return 0.0;
        }
        (self.obstacle_volume_in(&self.bounds) / v).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with_cube() -> Environment<2> {
        Environment::new(
            "test",
            Aabb::unit(),
            vec![Obstacle::Box(Aabb::new(
                Point::new([0.4, 0.4]),
                Point::new([0.6, 0.6]),
            ))],
            true,
        )
    }

    #[test]
    fn validity_respects_bounds_and_obstacles() {
        let env = env_with_cube();
        assert!(env.is_valid(&Point::new([0.1, 0.1]), 0.0));
        assert!(!env.is_valid(&Point::new([0.5, 0.5]), 0.0)); // inside obstacle
        assert!(!env.is_valid(&Point::new([1.5, 0.5]), 0.0)); // out of bounds
                                                              // clearance shrinks free space
        assert!(env.is_valid(&Point::new([0.3, 0.3]), 0.05));
        assert!(!env.is_valid(&Point::new([0.38, 0.5]), 0.05));
    }

    #[test]
    fn clearance_query() {
        let env = env_with_cube();
        assert!((env.clearance(&Point::new([0.2, 0.5])) - 0.2).abs() < 1e-12);
        let free: Environment<2> = Environment::free_space("f", Aabb::unit());
        assert_eq!(free.clearance(&Point::splat(0.5)), f64::INFINITY);
    }

    #[test]
    fn free_volume_exact() {
        let env = env_with_cube();
        // whole space: 1 - 0.04
        assert!((env.free_volume_in(&Aabb::unit()) - 0.96).abs() < 1e-12);
        // left half contains half the obstacle
        let left = Aabb::new(Point::zero(), Point::new([0.5, 1.0]));
        assert!((env.free_volume_in(&left) - (0.5 - 0.02)).abs() < 1e-12);
        // region outside bounds contributes nothing
        let outside = Aabb::new(Point::splat(2.0), Point::splat(3.0));
        assert_eq!(env.free_volume_in(&outside), 0.0);
    }

    #[test]
    fn blocked_fraction_matches() {
        let env = env_with_cube();
        assert!((env.blocked_fraction() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn overlapping_obstacles_use_estimate() {
        // two identical overlapping boxes must not double count
        let bb = Aabb::new(Point::new([0.0, 0.0]), Point::new([0.5, 1.0]));
        let env: Environment<2> = Environment::new(
            "ovl",
            Aabb::unit(),
            vec![Obstacle::Box(bb), Obstacle::Box(bb)],
            false,
        );
        let blocked = env.obstacle_volume_in(&Aabb::unit());
        assert!((blocked - 0.5).abs() < 0.05, "blocked {blocked}");
    }

    #[test]
    fn ray_cast_first_hit() {
        let env = env_with_cube();
        let r = Ray::new(Point::new([0.0, 0.5]), Point::new([1.0, 0.0]));
        assert!((env.ray_cast(&r, 10.0) - 0.4).abs() < 1e-12);
        let miss = Ray::new(Point::new([0.0, 0.1]), Point::new([1.0, 0.0]));
        assert_eq!(env.ray_cast(&miss, 10.0), 10.0);
    }
}
