//! Workspace environments: bounds + obstacles + geometric queries.

use crate::aabb::Aabb;
use crate::obstacle::Obstacle;
use crate::point::Point;
use crate::ray::Ray;
use serde::{Deserialize, Serialize};

/// A motion-planning workspace: a bounding box and a set of solid obstacles.
///
/// ```
/// use smp_geom::{envs, Point};
/// let env = envs::med_cube();
/// assert!(env.is_valid(&Point::splat(0.05), 0.0));   // corner: free
/// assert!(!env.is_valid(&Point::splat(0.5), 0.0));   // center: obstacle
/// assert!((env.blocked_fraction() - 0.24).abs() < 1e-9);
/// ```
///
/// The robot model used throughout the reproduction is a ball of radius `r`
/// in `R^D` (see DESIGN.md for why this substitution preserves the paper's
/// load-balance behaviour); validity queries therefore take a clearance
/// radius.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Environment<const D: usize> {
    name: String,
    bounds: Aabb<D>,
    obstacles: Vec<Obstacle<D>>,
    /// True when the obstacles are known to be pairwise disjoint, enabling
    /// exact free-volume computation by summation.
    disjoint_obstacles: bool,
}

impl<const D: usize> Environment<D> {
    /// New environment. `disjoint` should be true only when the caller
    /// guarantees obstacles do not overlap each other.
    pub fn new(
        name: impl Into<String>,
        bounds: Aabb<D>,
        obstacles: Vec<Obstacle<D>>,
        disjoint: bool,
    ) -> Self {
        Environment {
            name: name.into(),
            bounds,
            obstacles,
            disjoint_obstacles: disjoint,
        }
    }

    /// Obstacle-free environment.
    pub fn free_space(name: impl Into<String>, bounds: Aabb<D>) -> Self {
        Self::new(name, bounds, Vec::new(), true)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn bounds(&self) -> &Aabb<D> {
        &self.bounds
    }

    pub fn obstacles(&self) -> &[Obstacle<D>] {
        &self.obstacles
    }

    /// True when obstacles are declared pairwise disjoint.
    pub fn has_disjoint_obstacles(&self) -> bool {
        self.disjoint_obstacles
    }

    /// Is the ball of radius `clearance` centered at `p` inside the bounds
    /// and collision-free?
    pub fn is_valid(&self, p: &Point<D>, clearance: f64) -> bool {
        if !self.bounds.contains(p) {
            return false;
        }
        self.obstacles
            .iter()
            .all(|o| !o.contains(p) && o.distance(p) >= clearance)
    }

    /// Minimum distance from `p` to any obstacle surface (infinity when there
    /// are no obstacles). Zero inside an obstacle.
    pub fn clearance(&self, p: &Point<D>) -> f64 {
        self.obstacles
            .iter()
            .map(|o| o.distance(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Distance along `ray` to the first obstacle hit, clipped at `max_t`.
    ///
    /// This is the primitive behind the paper's RRT "k random rays" work
    /// estimate (§III-B).
    pub fn ray_cast(&self, ray: &Ray<D>, max_t: f64) -> f64 {
        self.obstacles
            .iter()
            .filter_map(|o| o.ray_hit(ray))
            .fold(max_t, f64::min)
    }

    /// Exact obstacle volume inside `region` (requires disjoint obstacles;
    /// falls back to a stratified estimate otherwise).
    pub fn obstacle_volume_in(&self, region: &Aabb<D>) -> f64 {
        if self.disjoint_obstacles {
            self.obstacles.iter().map(|o| o.volume_in(region)).sum()
        } else {
            self.obstacle_volume_in_estimate(region, 12)
        }
    }

    /// Stratified midpoint-grid estimate of obstacle volume inside `region`
    /// (`res` points per axis); handles overlapping obstacles correctly.
    pub fn obstacle_volume_in_estimate(&self, region: &Aabb<D>, res: usize) -> f64 {
        if self.obstacles.is_empty() {
            return 0.0;
        }
        let n = res.max(2);
        let ext = region.extents();
        let mut idx = vec![0usize; D];
        let mut inside = 0usize;
        let mut total = 0usize;
        loop {
            let mut p = region.lo();
            for i in 0..D {
                p[i] += ext[i] * ((idx[i] as f64 + 0.5) / n as f64);
            }
            total += 1;
            if self.obstacles.iter().any(|o| o.contains(&p)) {
                inside += 1;
            }
            let mut i = 0;
            loop {
                if i == D {
                    return region.volume() * inside as f64 / total as f64;
                }
                idx[i] += 1;
                if idx[i] < n {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }

    /// Free-space volume inside `region` (region ∩ bounds minus obstacles).
    pub fn free_volume_in(&self, region: &Aabb<D>) -> f64 {
        let clipped = match region.intersection(&self.bounds) {
            Some(c) => c,
            None => return 0.0,
        };
        (clipped.volume() - self.obstacle_volume_in(&clipped)).max(0.0)
    }

    /// Fraction of the whole workspace volume that is blocked by obstacles.
    pub fn blocked_fraction(&self) -> f64 {
        let v = self.bounds.volume();
        if v <= 0.0 {
            return 0.0;
        }
        (self.obstacle_volume_in(&self.bounds) / v).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with_cube() -> Environment<2> {
        Environment::new(
            "test",
            Aabb::unit(),
            vec![Obstacle::Box(Aabb::new(
                Point::new([0.4, 0.4]),
                Point::new([0.6, 0.6]),
            ))],
            true,
        )
    }

    #[test]
    fn validity_respects_bounds_and_obstacles() {
        let env = env_with_cube();
        assert!(env.is_valid(&Point::new([0.1, 0.1]), 0.0));
        assert!(!env.is_valid(&Point::new([0.5, 0.5]), 0.0)); // inside obstacle
        assert!(!env.is_valid(&Point::new([1.5, 0.5]), 0.0)); // out of bounds
                                                              // clearance shrinks free space
        assert!(env.is_valid(&Point::new([0.3, 0.3]), 0.05));
        assert!(!env.is_valid(&Point::new([0.38, 0.5]), 0.05));
    }

    #[test]
    fn clearance_query() {
        let env = env_with_cube();
        assert!((env.clearance(&Point::new([0.2, 0.5])) - 0.2).abs() < 1e-12);
        let free: Environment<2> = Environment::free_space("f", Aabb::unit());
        assert_eq!(free.clearance(&Point::splat(0.5)), f64::INFINITY);
    }

    #[test]
    fn free_volume_exact() {
        let env = env_with_cube();
        // whole space: 1 - 0.04
        assert!((env.free_volume_in(&Aabb::unit()) - 0.96).abs() < 1e-12);
        // left half contains half the obstacle
        let left = Aabb::new(Point::zero(), Point::new([0.5, 1.0]));
        assert!((env.free_volume_in(&left) - (0.5 - 0.02)).abs() < 1e-12);
        // region outside bounds contributes nothing
        let outside = Aabb::new(Point::splat(2.0), Point::splat(3.0));
        assert_eq!(env.free_volume_in(&outside), 0.0);
    }

    #[test]
    fn blocked_fraction_matches() {
        let env = env_with_cube();
        assert!((env.blocked_fraction() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn overlapping_obstacles_use_estimate() {
        // two identical overlapping boxes must not double count
        let bb = Aabb::new(Point::new([0.0, 0.0]), Point::new([0.5, 1.0]));
        let env: Environment<2> = Environment::new(
            "ovl",
            Aabb::unit(),
            vec![Obstacle::Box(bb), Obstacle::Box(bb)],
            false,
        );
        let blocked = env.obstacle_volume_in(&Aabb::unit());
        assert!((blocked - 0.5).abs() < 0.05, "blocked {blocked}");
    }

    #[test]
    fn ray_cast_first_hit() {
        let env = env_with_cube();
        let r = Ray::new(Point::new([0.0, 0.5]), Point::new([1.0, 0.0]));
        assert!((env.ray_cast(&r, 10.0) - 0.4).abs() < 1e-12);
        let miss = Ray::new(Point::new([0.0, 0.1]), Point::new([1.0, 0.0]));
        assert_eq!(env.ray_cast(&miss, 10.0), 10.0);
    }
}
