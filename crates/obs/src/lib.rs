//! # smp-obs — observability for the DES and planners
//!
//! Three small, dependency-free components (DESIGN.md §9):
//!
//! 1. A **structured event tracer** ([`trace::Tracer`]): span begin/end,
//!    instant events, and counter samples on per-PE tracks, stamped with
//!    *virtual* nanoseconds. Disabled tracing is a single branch — the
//!    simulator takes `Option<&mut Tracer>` and `None` costs nothing but a
//!    null check per call site.
//! 2. A **typed metrics registry** ([`metrics::MetricsRegistry`]): named
//!    counters, gauges, and histograms with *fixed* bucket boundaries, so
//!    the flattened [`metrics::MetricsSnapshot`] is a deterministic,
//!    byte-stable artifact suitable for golden-file regression tests.
//! 3. A **Chrome `trace_event` exporter** ([`chrome`], via
//!    [`trace::Tracer::to_chrome_json`]): the JSON array format loadable in
//!    `chrome://tracing` and <https://ui.perfetto.dev>, emitted one event
//!    per line with keys in a fixed order — byte-identical for identical
//!    event streams.
//!
//! ## Determinism contract
//!
//! Everything here is a pure function of the recorded events/increments:
//! no wall clocks, no thread ids, no hash-map iteration order (BTreeMap
//! everywhere), no floating point. Because the discrete-event simulator is
//! itself deterministic, the same `(workload, SimConfig, FaultPlan)` triple
//! yields a byte-identical trace and metrics snapshot — which is what the
//! golden-trace test suite in `tests/golden_trace.rs` locks down.
//!
//! The live execution backend records through per-worker [`buf::TraceBuf`]
//! buffers stamped with *wall-clock* nanoseconds; the export pipeline is
//! still a pure function of the recorded events, but wall-clock event
//! streams differ run to run, so golden-file comparison applies only to
//! virtual-time (DES) traces (DESIGN.md §12).

pub mod buf;
pub mod chrome;
pub mod metrics;
pub mod trace;

pub use buf::TraceBuf;
pub use metrics::{Histogram, MetricSample, MetricsRegistry, MetricsSnapshot};
pub use trace::{EventPhase, TraceCheckError, TraceEvent, Tracer};

/// Event categories used across the workspace. Category strings are part
/// of the trace format: filters in Perfetto and the well-formedness tests
/// key on them.
pub mod cat {
    /// Task execution spans on PE tracks.
    pub const TASK: &str = "task";
    /// Steal protocol traffic (requests, grants, denials, timeouts,
    /// backoff).
    pub const STEAL: &str = "steal";
    /// Message-level events (sends are implicit in steal events; this
    /// covers queue migrations and re-routes).
    pub const MSG: &str = "msg";
    /// Injected-fault effects: crashes, recoveries, drops, delays,
    /// retransmissions, straggler scaling. A zero-fault run emits none.
    pub const FAULT: &str = "fault";
    /// Planner phase spans (sample / repartition / connect / assemble).
    pub const PHASE: &str = "phase";
    /// Host thread-pool events.
    pub const POOL: &str = "pool";
    /// Restart-portfolio events: round starts, first-success cancellation
    /// fan-out, loser settlement. The matching metrics taxonomy is
    /// `portfolio.*` — deterministic ledger fields (members, rounds,
    /// winner, wasted/required/avoided attempt counts) plus run-dependent
    /// counters (`portfolio.attempts.completed`,
    /// `portfolio.cancel.post_fire_completions`).
    pub const PORTFOLIO: &str = "portfolio";
}
