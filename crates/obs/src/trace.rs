//! Structured event tracer with per-track span stacks.
//!
//! A [`Tracer`] records [`TraceEvent`]s on integer *tracks* (the DES uses
//! one track per PE plus one for planner phases). Emission order is the
//! caller's event order; timestamps are clamped to be monotone per track
//! (Chrome's `trace_event` format requires non-decreasing timestamps per
//! thread, and a discrete-event handler may legitimately stamp a message
//! service a few virtual ns behind an already-emitted poll event).
//!
//! The tracer also tracks open spans per track, which gives the
//! well-formedness guarantees the property tests pin: every `end` closes
//! the most recent `begin` on its track, unmatched ends are counted as
//! defects, and [`Tracer::check_well_formed`] re-verifies balance and
//! monotonicity from the recorded stream itself.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of trace record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventPhase {
    /// Span opening (`ph: "B"`).
    Begin,
    /// Span closing (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter,
}

/// One recorded event. `args` hold small integer payloads (task ids,
/// counts, costs) — never floats, so rendering is byte-stable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual nanoseconds (after base offset and per-track clamping).
    pub ts: u64,
    /// Track id (PE index, or a dedicated planner track).
    pub track: u32,
    pub phase: EventPhase,
    pub cat: &'static str,
    pub name: &'static str,
    pub args: Vec<(&'static str, u64)>,
}

/// Defects found by [`Tracer::check_well_formed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCheckError {
    /// An `End` with no matching `Begin` was recorded on `track`.
    UnmatchedEnd { track: u32 },
    /// `open` spans were never ended on `track`.
    UnclosedSpans { track: u32, open: usize },
    /// Timestamps went backwards on `track` (should be impossible — the
    /// recorder clamps).
    NonMonotone { track: u32, at: u64, prev: u64 },
    /// An `End` closed a span under a different name than its `Begin`.
    NameMismatch {
        track: u32,
        begin: &'static str,
        end: &'static str,
    },
}

impl std::fmt::Display for TraceCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCheckError::UnmatchedEnd { track } => {
                write!(f, "track {track}: span end without begin")
            }
            TraceCheckError::UnclosedSpans { track, open } => {
                write!(f, "track {track}: {open} spans never ended")
            }
            TraceCheckError::NonMonotone { track, at, prev } => {
                write!(f, "track {track}: timestamp {at} after {prev}")
            }
            TraceCheckError::NameMismatch { track, begin, end } => {
                write!(f, "track {track}: span '{begin}' ended as '{end}'")
            }
        }
    }
}

impl std::error::Error for TraceCheckError {}

/// Event recorder. Construct with [`Tracer::new`] (recording) or
/// [`Tracer::disabled`] (every call is a cheap early return).
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    /// Added to every timestamp — lets a caller splice several simulated
    /// phases onto one timeline (phase 2 starts where phase 1 ended).
    base: u64,
    events: Vec<TraceEvent>,
    /// Open span names per track (for auto-naming `end` and balance checks).
    open: BTreeMap<u32, Vec<&'static str>>,
    /// Last emitted timestamp per track (monotonicity clamp).
    last_ts: BTreeMap<u32, u64>,
    /// Human-readable track labels for the Chrome export.
    track_names: BTreeMap<u32, String>,
    /// `end` calls that found no open span (a defect, surfaced by
    /// [`Tracer::check_well_formed`]).
    unmatched_ends: u64,
}

impl Tracer {
    /// A recording tracer.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            ..Default::default()
        }
    }

    /// A tracer that records nothing; every mutator returns immediately.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Set the offset added to all subsequently recorded timestamps.
    pub fn set_base(&mut self, base: u64) {
        self.base = base;
    }

    pub fn base(&self) -> u64 {
        self.base
    }

    /// Label a track for the Chrome export (e.g. `"PE 3"`, `"phases"`).
    pub fn name_track(&mut self, track: u32, name: &str) {
        if !self.enabled {
            return;
        }
        self.track_names.insert(track, name.to_string());
    }

    #[inline]
    fn clamp(&mut self, track: u32, ts: u64) -> u64 {
        let ts = self.base + ts;
        let last = self.last_ts.entry(track).or_insert(0);
        let ts = ts.max(*last);
        *last = ts;
        ts
    }

    /// Open a span on `track`.
    pub fn begin(&mut self, ts: u64, track: u32, cat: &'static str, name: &'static str) {
        self.begin_args(ts, track, cat, name, &[]);
    }

    /// Open a span with integer args.
    pub fn begin_args(
        &mut self,
        ts: u64,
        track: u32,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled {
            return;
        }
        let ts = self.clamp(track, ts);
        self.open.entry(track).or_default().push(name);
        self.events.push(TraceEvent {
            ts,
            track,
            phase: EventPhase::Begin,
            cat,
            name,
            args: args.to_vec(),
        });
    }

    /// Close the most recent open span on `track`.
    pub fn end(&mut self, ts: u64, track: u32, cat: &'static str) {
        self.end_args(ts, track, cat, &[]);
    }

    /// Close the most recent open span on `track`, attaching args to the
    /// end event (e.g. `("aborted", 1)` for a crash rollback).
    pub fn end_args(
        &mut self,
        ts: u64,
        track: u32,
        cat: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled {
            return;
        }
        let Some(name) = self.open.entry(track).or_default().pop() else {
            self.unmatched_ends += 1;
            return;
        };
        let ts = self.clamp(track, ts);
        self.events.push(TraceEvent {
            ts,
            track,
            phase: EventPhase::End,
            cat,
            name,
            args: args.to_vec(),
        });
    }

    /// Record a point event.
    pub fn instant(
        &mut self,
        ts: u64,
        track: u32,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled {
            return;
        }
        let ts = self.clamp(track, ts);
        self.events.push(TraceEvent {
            ts,
            track,
            phase: EventPhase::Instant,
            cat,
            name,
            args: args.to_vec(),
        });
    }

    /// Record a counter sample (rendered as a stacked area in Perfetto).
    pub fn counter(&mut self, ts: u64, track: u32, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let ts = self.clamp(track, ts);
        self.events.push(TraceEvent {
            ts,
            track,
            phase: EventPhase::Counter,
            cat: "counter",
            name,
            args: vec![("value", value)],
        });
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of spans currently open across all tracks.
    pub fn open_spans(&self) -> usize {
        self.open.values().map(Vec::len).sum()
    }

    /// Events in `cat` (test helper).
    pub fn count_category(&self, cat: &str) -> usize {
        self.events.iter().filter(|e| e.cat == cat).count()
    }

    /// Track labels registered via [`Tracer::name_track`].
    pub fn track_names(&self) -> &BTreeMap<u32, String> {
        &self.track_names
    }

    /// Re-verify the recorded stream: balanced nesting per track, monotone
    /// per-track timestamps, no unmatched ends, nothing left open.
    pub fn check_well_formed(&self) -> Result<(), TraceCheckError> {
        if self.unmatched_ends > 0 {
            // find the earliest offender is not possible post-hoc; report
            // the first track that appears in the stream
            let track = self.events.first().map_or(0, |e| e.track);
            return Err(TraceCheckError::UnmatchedEnd { track });
        }
        let mut stacks: BTreeMap<u32, Vec<&'static str>> = BTreeMap::new();
        let mut last: BTreeMap<u32, u64> = BTreeMap::new();
        for e in &self.events {
            let prev = last.entry(e.track).or_insert(0);
            if e.ts < *prev {
                return Err(TraceCheckError::NonMonotone {
                    track: e.track,
                    at: e.ts,
                    prev: *prev,
                });
            }
            *prev = e.ts;
            match e.phase {
                EventPhase::Begin => stacks.entry(e.track).or_default().push(e.name),
                EventPhase::End => match stacks.entry(e.track).or_default().pop() {
                    None => return Err(TraceCheckError::UnmatchedEnd { track: e.track }),
                    Some(begin) if begin != e.name => {
                        return Err(TraceCheckError::NameMismatch {
                            track: e.track,
                            begin,
                            end: e.name,
                        })
                    }
                    Some(_) => {}
                },
                EventPhase::Instant | EventPhase::Counter => {}
            }
        }
        for (&track, stack) in &stacks {
            if !stack.is_empty() {
                return Err(TraceCheckError::UnclosedSpans {
                    track,
                    open: stack.len(),
                });
            }
        }
        Ok(())
    }

    /// Render the stream as Chrome `trace_event` JSON (see [`crate::chrome`]).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(&self.events, &self.track_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cat;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.begin(0, 0, cat::TASK, "task");
        t.instant(5, 0, cat::STEAL, "req", &[("victim", 3)]);
        t.end(10, 0, cat::TASK);
        t.counter(11, 0, "queue", 4);
        assert!(t.is_empty());
        assert_eq!(t.open_spans(), 0);
        assert!(t.check_well_formed().is_ok());
    }

    #[test]
    fn spans_balance_and_auto_name() {
        let mut t = Tracer::new();
        t.begin(0, 2, cat::TASK, "task");
        t.begin(5, 2, cat::TASK, "inner");
        t.end(7, 2, cat::TASK);
        t.end(9, 2, cat::TASK);
        assert_eq!(t.len(), 4);
        assert_eq!(t.events()[2].name, "inner");
        assert_eq!(t.events()[3].name, "task");
        assert_eq!(t.open_spans(), 0);
        assert!(t.check_well_formed().is_ok());
    }

    #[test]
    fn unmatched_end_is_a_defect() {
        let mut t = Tracer::new();
        t.end(3, 0, cat::TASK);
        assert!(matches!(
            t.check_well_formed(),
            Err(TraceCheckError::UnmatchedEnd { .. })
        ));
    }

    #[test]
    fn unclosed_span_is_a_defect() {
        let mut t = Tracer::new();
        t.begin(0, 1, cat::TASK, "task");
        assert_eq!(t.open_spans(), 1);
        assert!(matches!(
            t.check_well_formed(),
            Err(TraceCheckError::UnclosedSpans { track: 1, open: 1 })
        ));
    }

    #[test]
    fn timestamps_clamped_monotone_per_track() {
        let mut t = Tracer::new();
        t.instant(100, 0, cat::MSG, "a", &[]);
        t.instant(90, 0, cat::MSG, "b", &[]); // would go backwards: clamped
        t.instant(50, 1, cat::MSG, "c", &[]); // other track unaffected
        assert_eq!(t.events()[1].ts, 100);
        assert_eq!(t.events()[2].ts, 50);
        assert!(t.check_well_formed().is_ok());
    }

    #[test]
    fn base_offsets_splice_phases() {
        let mut t = Tracer::new();
        t.begin(0, 0, cat::PHASE, "gen");
        t.end(100, 0, cat::PHASE);
        t.set_base(100);
        t.begin(0, 0, cat::PHASE, "connect");
        t.end(250, 0, cat::PHASE);
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 100, 100, 350]);
    }

    #[test]
    fn identical_streams_render_identically() {
        let record = |seed: u64| {
            let mut t = Tracer::new();
            t.name_track(0, "PE 0");
            t.begin_args(seed, 0, cat::TASK, "task", &[("task", 1)]);
            t.instant(seed + 1, 0, cat::STEAL, "req", &[]);
            t.end(seed + 2, 0, cat::TASK);
            t.to_chrome_json()
        };
        assert_eq!(record(10), record(10));
        assert_ne!(record(10), record(11));
    }
}
