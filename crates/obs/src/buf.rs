//! Worker-local trace buffers for multi-threaded wall-clock recording.
//!
//! [`crate::trace::Tracer`] is deliberately single-threaded (`&mut self`
//! everywhere) so the DES pays no synchronization cost. The live execution
//! backend runs on real OS threads, so each worker records into its own
//! [`TraceBuf`] — an append-only event list for one track, no locks, no
//! shared state — and the buffers are replayed into one `Tracer` after the
//! threads join. Replay goes through the normal `Tracer` entry points, so
//! monotone clamping, span-stack balancing, and Chrome-JSON export all work
//! unchanged.
//!
//! Timestamps are whatever the recorder chooses — the live backend uses
//! wall-clock nanoseconds since a shared phase epoch, which keeps every
//! worker's track on one comparable timeline.

use crate::trace::{EventPhase, Tracer};

/// One buffered event (the track is implied by the owning buffer).
#[derive(Debug, Clone)]
struct BufEvent {
    ts: u64,
    phase: EventPhase,
    cat: &'static str,
    name: &'static str,
    args: Vec<(&'static str, u64)>,
}

/// An append-only, single-owner event buffer for one trace track.
///
/// ```
/// use smp_obs::{TraceBuf, Tracer, cat};
/// let mut buf = TraceBuf::new(3);
/// buf.begin(10, cat::TASK, "task", &[("task", 7)]);
/// buf.end(25, cat::TASK, &[]);
/// buf.counter(25, "queue_len", 2);
///
/// let mut tracer = Tracer::new();
/// buf.replay_into(&mut tracer);
/// assert_eq!(tracer.len(), 3);
/// assert_eq!(tracer.open_spans(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuf {
    track: u32,
    events: Vec<BufEvent>,
}

impl TraceBuf {
    /// An empty buffer recording onto `track`.
    pub fn new(track: u32) -> Self {
        TraceBuf {
            track,
            events: Vec::new(),
        }
    }

    /// The track every event of this buffer replays onto.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Open a span.
    pub fn begin(
        &mut self,
        ts: u64,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        self.events.push(BufEvent {
            ts,
            phase: EventPhase::Begin,
            cat,
            name,
            args: args.to_vec(),
        });
    }

    /// Close the most recent open span (name resolved at replay time by
    /// the tracer's span stack).
    pub fn end(&mut self, ts: u64, cat: &'static str, args: &[(&'static str, u64)]) {
        self.events.push(BufEvent {
            ts,
            phase: EventPhase::End,
            cat,
            name: "",
            args: args.to_vec(),
        });
    }

    /// Record a point event.
    pub fn instant(
        &mut self,
        ts: u64,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        self.events.push(BufEvent {
            ts,
            phase: EventPhase::Instant,
            cat,
            name,
            args: args.to_vec(),
        });
    }

    /// Record a counter sample.
    pub fn counter(&mut self, ts: u64, name: &'static str, value: u64) {
        self.events.push(BufEvent {
            ts,
            phase: EventPhase::Counter,
            cat: "counter",
            name,
            args: vec![("value", value)],
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replay every buffered event into `tracer` on this buffer's track,
    /// in recording order, through the normal `Tracer` entry points (so
    /// clamping and span balancing apply).
    pub fn replay_into(&self, tracer: &mut Tracer) {
        for e in &self.events {
            match e.phase {
                EventPhase::Begin => tracer.begin_args(e.ts, self.track, e.cat, e.name, &e.args),
                EventPhase::End => tracer.end_args(e.ts, self.track, e.cat, &e.args),
                EventPhase::Instant => tracer.instant(e.ts, self.track, e.cat, e.name, &e.args),
                EventPhase::Counter => {
                    let v = e.args.first().map_or(0, |&(_, v)| v);
                    tracer.counter(e.ts, self.track, e.name, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cat;

    #[test]
    fn replay_preserves_order_and_balances_spans() {
        let mut buf = TraceBuf::new(2);
        buf.begin(100, cat::TASK, "task", &[("task", 1)]);
        buf.instant(110, cat::STEAL, "steal_hit", &[("victim", 3)]);
        buf.end(150, cat::TASK, &[]);
        buf.counter(150, "queue_len", 4);
        assert_eq!(buf.len(), 4);

        let mut tracer = Tracer::new();
        buf.replay_into(&mut tracer);
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.open_spans(), 0);
        tracer.check_well_formed().expect("well-formed");
        let names: Vec<_> = tracer.events().iter().map(|e| e.name).collect();
        assert_eq!(names, ["task", "steal_hit", "task", "queue_len"]);
        assert!(tracer.events().iter().all(|e| e.track == 2));
    }

    #[test]
    fn multiple_buffers_share_one_tracer() {
        let mut a = TraceBuf::new(0);
        let mut b = TraceBuf::new(1);
        a.begin(5, cat::TASK, "task", &[]);
        a.end(9, cat::TASK, &[]);
        b.begin(3, cat::TASK, "task", &[]);
        b.end(7, cat::TASK, &[]);
        let mut tracer = Tracer::new();
        a.replay_into(&mut tracer);
        b.replay_into(&mut tracer);
        assert_eq!(tracer.len(), 4);
        tracer.check_well_formed().expect("well-formed");
    }
}
