//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON-object flavour of the format (an object with a
//! `traceEvents` array), loadable in `chrome://tracing` and
//! <https://ui.perfetto.dev>. One event per line, keys in a fixed order,
//! integers only — identical event streams render byte-identically, which
//! the golden-trace suite relies on.
//!
//! Timestamps are written raw in **virtual nanoseconds** with
//! `"displayTimeUnit": "ns"`. Viewers that assume microseconds will show
//! durations 1000× long; relative shape — which is what traces are for —
//! is unaffected.

use crate::trace::{EventPhase, TraceEvent};
use std::collections::BTreeMap;

/// Escape a string for a JSON value (names here are identifiers, but the
/// track labels are caller-supplied).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_args(args: &[(&'static str, u64)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(k, out);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push('}');
}

/// Render `events` (with optional track labels) as Chrome trace JSON.
pub fn to_chrome_json(events: &[TraceEvent], track_names: &BTreeMap<u32, String>) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    // Metadata: process name once, thread (track) names sorted by id.
    push_sep(&mut out, &mut first);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"smp\"}}",
    );
    for (&track, name) in track_names {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{track},\"args\":{{\"name\":\""
        ));
        escape(name, &mut out);
        out.push_str("\"}}");
    }

    for e in events {
        push_sep(&mut out, &mut first);
        let ph = match e.phase {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Instant => "i",
            EventPhase::Counter => "C",
        };
        out.push_str("{\"name\":\"");
        escape(e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape(e.cat, &mut out);
        out.push_str(&format!(
            "\",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{},\"ts\":{}",
            e.track, e.ts
        ));
        if e.phase == EventPhase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() || e.phase == EventPhase::Counter {
            out.push_str(",\"args\":");
            push_args(&e.args, &mut out);
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::cat;
    use crate::trace::Tracer;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new();
        t.name_track(0, "PE 0");
        t.name_track(1, "PE 1");
        t.begin_args(0, 0, cat::TASK, "task", &[("task", 3), ("cost", 250)]);
        t.instant(40, 1, cat::STEAL, "steal_req_sent", &[("victim", 0)]);
        t.counter(100, 0, "unstarted", 7);
        t.end(250, 0, cat::TASK);
        t
    }

    #[test]
    fn renders_expected_shape() {
        let json = sample_tracer().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"PE 1\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\",") || json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"task\":3,\"cost\":250}"));
        // every event line is a complete object: rough brace balance
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn identical_streams_are_byte_identical() {
        assert_eq!(
            sample_tracer().to_chrome_json(),
            sample_tracer().to_chrome_json()
        );
    }

    #[test]
    fn escapes_hostile_track_names() {
        let mut t = Tracer::new();
        t.name_track(0, "a\"b\\c\nd");
        let json = t.to_chrome_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }
}
