//! Typed metrics registry with deterministic flattening.
//!
//! Three metric kinds, all integer-valued so snapshots are byte-stable:
//!
//! * **counter** — monotone accumulator ([`MetricsRegistry::inc`]);
//! * **gauge** — last-write-wins sample ([`MetricsRegistry::set_gauge`]);
//! * **histogram** — fixed bucket boundaries declared at registration
//!   ([`MetricsRegistry::register_histogram`]); observations land in the
//!   first bucket whose upper bound is `>=` the value, with a `+Inf`
//!   overflow bucket, plus exact `count` and `sum`.
//!
//! [`MetricsRegistry::snapshot`] flattens everything into one
//! lexicographically-sorted `(name, value)` list — the canonical artifact
//! the golden-trace tests compare byte for byte, and what `SimReport`
//! embeds.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default histogram bounds: decades from 1 µs to 100 ms in virtual ns.
pub const DEFAULT_TIME_BOUNDS: &[u64] =
    &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// A fixed-boundary histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the `+Inf` overflow.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the bound
    /// of the first bucket whose cumulative count reaches `ceil(q * count)`.
    /// Values that landed in the `+Inf` overflow bucket clamp to the
    /// largest declared bound, so the estimate stays integer-valued and
    /// deterministic. Returns `None` for an empty histogram.
    ///
    /// This is a bucketed estimate for dashboards (`serve.latency.p99_ns`
    /// and friends); benchmark gates that need exact percentiles keep the
    /// raw samples instead.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(match self.bounds.get(i) {
                    Some(&b) => b,
                    None => *self.bounds.last().unwrap_or(&0),
                });
            }
        }
        Some(*self.bounds.last().unwrap_or(&0))
    }
}

/// One flattened metric row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSample {
    pub name: String,
    pub value: u64,
}

/// A flat, sorted, integer-valued view of a registry — the deterministic
/// artifact embedded in reports and compared in golden tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Sorted by `name` (lexicographic, unique).
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| self.samples[i].value)
    }

    /// Like [`MetricsSnapshot::get`] but panics with the metric name — for
    /// tests asserting on metrics that must exist.
    pub fn expect(&self, name: &str) -> u64 {
        self.get(name)
            .unwrap_or_else(|| panic!("metric '{name}' missing from snapshot"))
    }

    /// Canonical text rendering: one `name value` line per sample, sorted.
    /// This is the golden-file format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.name);
            out.push(' ');
            out.push_str(&s.value.to_string());
            out.push('\n');
        }
        out
    }

    /// CSV rendering with a `metric,value` header (for `results/` dumps).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for s in &self.samples {
            out.push_str(&s.name);
            out.push(',');
            out.push_str(&s.value.to_string());
            out.push('\n');
        }
        out
    }

    /// Merge `other`'s samples into `self` (names must not collide;
    /// collisions keep the existing value and are a caller bug caught in
    /// debug builds).
    pub fn merged_with(mut self, other: &MetricsSnapshot) -> MetricsSnapshot {
        for s in &other.samples {
            debug_assert!(
                self.get(&s.name).is_none(),
                "metric '{}' present in both snapshots",
                s.name
            );
            self.samples.push(s.clone());
        }
        self.samples.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }
}

/// The registry. Metric names are `&'static str` — the taxonomy is fixed
/// at compile time (DESIGN.md §9 lists it), which keeps the hot-path cost
/// to one BTreeMap lookup and makes collisions impossible to introduce at
/// runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &'static str, v: u64) {
        self.gauges.insert(name, v);
    }

    /// Declare histogram `name` with fixed `bounds` (strictly increasing).
    /// Idempotent for identical bounds; re-registering with different
    /// bounds is a caller bug (debug assertion).
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[u64]) {
        match self.histograms.get(name) {
            Some(h) => debug_assert_eq!(h.bounds(), bounds, "histogram '{name}' re-registered"),
            None => {
                self.histograms.insert(name, Histogram::new(bounds));
            }
        }
    }

    /// Record `v` into histogram `name` (auto-registers with
    /// [`DEFAULT_TIME_BOUNDS`] if not declared).
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(DEFAULT_TIME_BOUNDS))
            .observe(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Flatten to the canonical sorted snapshot. Histograms expand to
    /// `name/le_<bound>` per bucket, `name/le_inf`, `name/count`, and
    /// `name/sum`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples: Vec<MetricSample> = Vec::new();
        for (&name, &v) in &self.counters {
            samples.push(MetricSample {
                name: name.to_string(),
                value: v,
            });
        }
        for (&name, &v) in &self.gauges {
            samples.push(MetricSample {
                name: name.to_string(),
                value: v,
            });
        }
        for (&name, h) in &self.histograms {
            for (i, &b) in h.bounds.iter().enumerate() {
                samples.push(MetricSample {
                    name: format!("{name}/le_{b}"),
                    value: h.counts[i],
                });
            }
            samples.push(MetricSample {
                name: format!("{name}/le_inf"),
                value: h.counts[h.bounds.len()],
            });
            samples.push(MetricSample {
                name: format!("{name}/count"),
                value: h.count,
            });
            samples.push(MetricSample {
                name: format!("{name}/sum"),
                value: h.sum,
            });
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        debug_assert!(
            samples.windows(2).all(|w| w[0].name != w[1].name),
            "metric name collision across kinds"
        );
        MetricsSnapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.inc("a.x", 2);
        r.inc("a.x", 3);
        r.inc("a.y", 1);
        assert_eq!(r.counter("a.x"), 5);
        assert_eq!(r.counter("a.y"), 1);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("g", 7);
        r.set_gauge("g", 9);
        assert_eq!(r.gauge("g"), Some(9));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("h", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            r.observe("h", v);
        }
        let h = r.histogram("h").unwrap();
        assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]); // <=10: {5,10}; <=100: {11,100}; inf: {5000}
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn quantile_estimates_clamp_to_declared_bounds() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("h", &[10, 100, 1000]);
        assert_eq!(r.histogram("h").unwrap().quantile(0.5), None);
        for v in [5, 10, 11, 100, 5000] {
            r.observe("h", v);
        }
        let h = r.histogram("h").unwrap();
        // cumulative counts per bucket: 2, 4, 4, 5
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.4), Some(10));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(0.8), Some(100));
        // p99 falls in the overflow bucket -> clamps to the largest bound
        assert_eq!(h.quantile(0.99), Some(1000));
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn snapshot_is_sorted_and_flat() {
        let mut r = MetricsRegistry::new();
        r.inc("z.counter", 1);
        r.set_gauge("a.gauge", 2);
        r.register_histogram("m.hist", &[10]);
        r.observe("m.hist", 4);
        let s = r.snapshot();
        let names: Vec<&str> = s.samples.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "a.gauge",
                "m.hist/count",
                "m.hist/le_10",
                "m.hist/le_inf",
                "m.hist/sum",
                "z.counter"
            ]
        );
        assert_eq!(s.get("z.counter"), Some(1));
        assert_eq!(s.get("m.hist/le_10"), Some(1));
        assert_eq!(s.get("nope"), None);
    }

    #[test]
    fn snapshot_text_is_canonical() {
        let mut r = MetricsRegistry::new();
        r.inc("b", 2);
        r.inc("a", 1);
        let s = r.snapshot();
        assert_eq!(s.to_text(), "a 1\nb 2\n");
        assert_eq!(s.to_csv(), "metric,value\na,1\nb,2\n");
        // identical registries render identically
        let mut r2 = MetricsRegistry::new();
        r2.inc("a", 1);
        r2.inc("b", 2);
        assert_eq!(r2.snapshot().to_text(), s.to_text());
    }

    #[test]
    fn merged_snapshots_stay_sorted() {
        let mut a = MetricsRegistry::new();
        a.inc("des.x", 1);
        let mut b = MetricsRegistry::new();
        b.inc("prm.y", 2);
        b.inc("app.z", 3);
        let m = a.snapshot().merged_with(&b.snapshot());
        let names: Vec<&str> = m.samples.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["app.z", "des.x", "prm.y"]);
    }
}
