//! Restart-portfolio tail-latency benchmark (DES backend, committed as
//! `BENCH_portfolio.json`).
//!
//! The claim under test ("Faster Motion Planning via Restarts",
//! PAPERS.md): RRT solve times on narrow-passage problems are
//! heavy-tailed, so a Luby restart portfolio beats a single full-budget
//! run at the tail — p99 drops even when p50 does not. The benchmark
//! sweeps one heavy-tail scenario (a thick wall with a narrow gap)
//! across four configurations — a single run, a parallel portfolio
//! without restarts, a fixed-cutoff portfolio, and a Luby portfolio —
//! over many seeds on the DES, and reports p50/p99/tail-mass of the
//! virtual solve time. An aggressive fixed cutoff is deliberately part
//! of the sweep: it improves p50 but can *lose* at p99 when every member
//! of a round misses the cutoff, which is exactly the fragility Luby's
//! escalation repairs.
//!
//! Everything is virtual time, so the whole report is deterministic; the
//! committed JSON carries a `gate` array of per-configuration FNV digests
//! over the first [`GATE_TRIALS`] portfolio ledgers (quick and full mode
//! share the digest subset, so `--quick --check` validates the committed
//! full baseline).

use smp_core::{
    run_portfolio_rrt_on, PlannerKind, PortfolioOutcome, RestartSchedule, RrtPortfolioConfig,
    Strategy,
};
use smp_geom::{envs, Environment, Point};
use smp_plan::Roadmap;
use smp_runtime::{Backend, MachineModel};

/// Trials whose ledger digests form the deterministic gate (= the quick
/// trial count, so quick and full runs gate identically).
pub const GATE_TRIALS: usize = 8;

/// Workers per portfolio round (also the portfolio size).
const WORKERS: usize = 4;

/// One configuration's tail statistics over the trial sweep.
#[derive(Debug, Clone)]
pub struct ConfigStats {
    /// Configuration label (`single`, `par-none`, `fixed-…`, `luby-…`).
    pub label: String,
    /// Trials that produced a winner within budget.
    pub solved: usize,
    /// Total trials.
    pub trials: usize,
    /// Median virtual solve time (ns).
    pub p50_ns: u64,
    /// 99th-percentile virtual solve time (ns).
    pub p99_ns: u64,
    /// Mean excess over the median, normalized by the median — a scale-
    /// free measure of how heavy the tail is.
    pub tail_mass: f64,
    /// Mean wasted virtual work per trial (ledger `wasted_vcost`).
    pub mean_wasted_vcost: u64,
    /// Mean rounds per trial.
    pub mean_rounds: f64,
    /// FNV digest over the first [`GATE_TRIALS`] trials' ledger digests.
    pub gate_digest: u64,
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Quick mode runs the gate subset only; full adds tail resolution.
    pub quick: bool,
    /// Trials per configuration.
    pub trials: usize,
    /// Stats per configuration, in sweep order.
    pub configs: Vec<ConfigStats>,
}

impl PortfolioReport {
    /// Stats for `label`, if the sweep produced them.
    pub fn config(&self, label: &str) -> Option<&ConfigStats> {
        self.configs.iter().find(|c| c.label == label)
    }
}

/// The heavy-tail scenario: one thick wall with a narrow gap between the
/// start and goal corners. Lucky seeds thread the gap early; unlucky
/// seeds wander, and because the RRT nearest-neighbour charge grows
/// superlinearly with tree size, late solves cost far more than
/// proportionally — an 8× vcost spread across seeds.
pub fn heavy_tail_scenario(env: &Environment<3>) -> RrtPortfolioConfig<'_, 3> {
    RrtPortfolioConfig {
        members: WORKERS,
        planners: vec![PlannerKind::Rrt],
        step_size: 0.04,
        target_bias: 0.05,
        lp_resolution: 0.03,
        ..RrtPortfolioConfig::new(env, Point::splat(0.06), Point::splat(0.94))
    }
}

/// The heavy-tail environment itself: one thick wall, narrow gap.
pub fn heavy_tail_env() -> Environment<3> {
    envs::walls(1, 0.10, 0.05)
}

/// The swept configurations: label + (members, schedule, base budget).
fn configurations() -> Vec<(String, usize, RestartSchedule, usize)> {
    let single_budget = 20_000;
    vec![
        (
            "single".to_string(),
            1,
            RestartSchedule::None,
            single_budget,
        ),
        (
            "par-none".to_string(),
            WORKERS,
            RestartSchedule::None,
            single_budget,
        ),
        (
            RestartSchedule::Fixed(2_000).label(),
            WORKERS,
            RestartSchedule::Fixed(2_000),
            single_budget,
        ),
        (
            RestartSchedule::Luby(2_500).label(),
            WORKERS,
            RestartSchedule::Luby(2_500),
            single_budget,
        ),
    ]
}

fn fnv_mix(h: u64, v: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn run_trial(
    base: &RrtPortfolioConfig<'_, 3>,
    members: usize,
    schedule: RestartSchedule,
    budget: usize,
    trial: usize,
    machine: &MachineModel,
) -> PortfolioOutcome<Roadmap<3>> {
    let cfg = RrtPortfolioConfig {
        members,
        schedule,
        max_rounds: 24,
        base_iters: budget,
        seed: 0x9E1D + trial as u64,
        ..base.clone()
    };
    run_portfolio_rrt_on(&cfg, machine, WORKERS, Strategy::NoLb, Backend::Des)
        .expect("DES portfolio run")
}

/// Run the sweep. `quick` runs [`GATE_TRIALS`] trials per configuration;
/// full runs 4× that for better tail resolution. The gate digests are
/// identical either way.
pub fn run(quick: bool) -> PortfolioReport {
    let trials = if quick { GATE_TRIALS } else { GATE_TRIALS * 4 };
    let env = heavy_tail_env();
    let base = heavy_tail_scenario(&env);
    let machine = MachineModel::hopper();
    let mut configs = Vec::new();
    for (label, members, schedule, budget) in configurations() {
        let mut times = Vec::with_capacity(trials);
        let mut solved = 0usize;
        let mut wasted = 0u64;
        let mut rounds = 0u64;
        let mut gate = 0xcbf2_9ce4_8422_2325u64;
        for trial in 0..trials {
            let out = run_trial(&base, members, schedule, budget, trial, &machine);
            if out.ledger.winner.is_some() {
                solved += 1;
            }
            times.push(out.total_time);
            wasted += out.ledger.wasted_vcost;
            rounds += out.ledger.rounds_run;
            if trial < GATE_TRIALS {
                gate = fnv_mix(gate, out.ledger.digest());
            }
        }
        times.sort_unstable();
        let p50 = percentile(&times, 0.5);
        let p99 = percentile(&times, 0.99);
        let tail_mass = if p50 == 0 {
            0.0
        } else {
            let excess: f64 = times
                .iter()
                .map(|&t| t.saturating_sub(p50) as f64)
                .sum::<f64>()
                / times.len() as f64;
            excess / p50 as f64
        };
        configs.push(ConfigStats {
            label,
            solved,
            trials,
            p50_ns: p50,
            p99_ns: p99,
            tail_mass,
            mean_wasted_vcost: wasted / trials as u64,
            mean_rounds: rounds as f64 / trials as f64,
            gate_digest: gate,
        });
    }
    PortfolioReport {
        quick,
        trials,
        configs,
    }
}

/// Deterministic gate lines, one per configuration.
pub fn gate_lines(report: &PortfolioReport) -> Vec<String> {
    report
        .configs
        .iter()
        .map(|c| format!("{}={:#018x}", c.label, c.gate_digest))
        .collect()
}

/// The benchmark's headline claim, asserted: the Luby portfolio's p99
/// must beat the single run's p99 on the heavy-tail scenario, and every
/// configuration must solve every trial within budget. Returns violation
/// messages (empty = pass).
pub fn tail_violations(report: &PortfolioReport) -> Vec<String> {
    let mut v = Vec::new();
    let (Some(single), Some(luby)) = (
        report.config("single"),
        report.configs.iter().find(|c| c.label.starts_with("luby")),
    ) else {
        v.push("sweep missing single/luby configurations".to_string());
        return v;
    };
    if luby.p99_ns >= single.p99_ns {
        v.push(format!(
            "luby p99 {}ns does not beat single-run p99 {}ns",
            luby.p99_ns, single.p99_ns
        ));
    }
    for c in &report.configs {
        if c.label != "single" && c.solved != c.trials {
            v.push(format!(
                "{}: only {}/{} trials solved within budget",
                c.label, c.solved, c.trials
            ));
        }
    }
    v
}

/// Serialize as `BENCH_portfolio.json` (hand-rolled, same idiom as
/// [`crate::kernels::to_json`]).
pub fn to_json(report: &PortfolioReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"smp-bench/portfolio/v1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if report.quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"trials\": {},\n", report.trials));
    s.push_str(&format!("  \"gate_trials\": {GATE_TRIALS},\n"));
    s.push_str("  \"configs\": [\n");
    for (i, c) in report.configs.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!(
            "\"label\": \"{}\", \"solved\": {}, \"trials\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"tail_mass\": {:.4}, \"mean_wasted_vcost\": {}, \"mean_rounds\": {:.2}, \"digest\": \"{:#018x}\"",
            c.label,
            c.solved,
            c.trials,
            c.p50_ns,
            c.p99_ns,
            c.tail_mass,
            c.mean_wasted_vcost,
            c.mean_rounds,
            c.gate_digest
        ));
        s.push_str(if i + 1 < report.configs.len() {
            "},\n"
        } else {
            "}\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"gate\": [\n");
    let lines = gate_lines(report);
    for (i, l) in lines.iter().enumerate() {
        s.push_str(&format!(
            "    \"{l}\"{}\n",
            if i + 1 < lines.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compare this run's gate digests against a committed
/// `BENCH_portfolio.json`. Tail statistics are *not* gated beyond the
/// [`tail_violations`] assertions — the ledgers must never drift.
pub fn check_against(report: &PortfolioReport, committed_json: &str) -> Vec<String> {
    let committed = crate::kernels::parse_gate(committed_json);
    let current = gate_lines(report);
    let mut drift = Vec::new();
    if committed.is_empty() {
        drift.push("committed baseline has no gate array".to_string());
        return drift;
    }
    for line in &current {
        let key = line.split('=').next().unwrap_or_default();
        match committed.iter().find(|c| c.split('=').next() == Some(key)) {
            None => drift.push(format!("gate {key} missing from committed baseline")),
            Some(c) if c != line => {
                drift.push(format!("gate drift: committed `{c}` vs current `{line}`"))
            }
            Some(_) => {}
        }
    }
    for c in &committed {
        let key = c.split('=').next().unwrap_or_default();
        if !current.iter().any(|l| l.split('=').next() == Some(key)) {
            drift.push(format!("gate {key} present in baseline but not produced"));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_the_gate_checker() {
        // A tiny synthetic report exercises serialization + gate parsing
        // without paying for the real sweep in debug tests.
        let report = PortfolioReport {
            quick: true,
            trials: 2,
            configs: vec![
                ConfigStats {
                    label: "single".into(),
                    solved: 2,
                    trials: 2,
                    p50_ns: 100,
                    p99_ns: 900,
                    tail_mass: 0.5,
                    mean_wasted_vcost: 0,
                    mean_rounds: 1.0,
                    gate_digest: 0xabc,
                },
                ConfigStats {
                    label: "luby-250".into(),
                    solved: 2,
                    trials: 2,
                    p50_ns: 120,
                    p99_ns: 400,
                    tail_mass: 0.2,
                    mean_wasted_vcost: 50,
                    mean_rounds: 2.5,
                    gate_digest: 0xdef,
                },
            ],
        };
        let json = to_json(&report);
        assert!(json.contains("smp-bench/portfolio/v1"));
        assert!(check_against(&report, &json).is_empty());
        let mut tampered = report.clone();
        tampered.configs[1].gate_digest ^= 1;
        assert!(!check_against(&tampered, &json).is_empty());
        assert!(tail_violations(&report).is_empty());
        let mut bad = report.clone();
        bad.configs[1].p99_ns = 1_000;
        assert!(!tail_violations(&bad).is_empty());
    }

    #[test]
    #[ignore = "manual tuning probe: prints per-seed solve-cost distributions"]
    fn solve_cost_distribution_probe() {
        use smp_runtime::Backend;
        for (walls_n, thick, gap, step, bias) in [
            (1usize, 0.10, 0.05, 0.04, 0.05),
            (1, 0.12, 0.04, 0.03, 0.05),
            (2, 0.08, 0.05, 0.04, 0.05),
            (2, 0.05, 0.06, 0.04, 0.02),
            (3, 0.05, 0.08, 0.05, 0.05),
        ] {
            let env = envs::walls(walls_n, thick, gap);
            let machine = MachineModel::hopper();
            let mut v = Vec::new();
            let mut unsolved = 0;
            for trial in 0..24u64 {
                let cfg = RrtPortfolioConfig {
                    members: 1,
                    schedule: RestartSchedule::None,
                    max_rounds: 1,
                    base_iters: 20_000,
                    step_size: step,
                    target_bias: bias,
                    lp_resolution: 0.03,
                    seed: 0x9E1D + trial,
                    ..RrtPortfolioConfig::new(&env, Point::splat(0.06), Point::splat(0.94))
                };
                let out =
                    run_portfolio_rrt_on(&cfg, &machine, 1, Strategy::NoLb, Backend::Des).unwrap();
                if out.ledger.winner.is_some() {
                    v.push(out.ledger.winner_vcost);
                } else {
                    unsolved += 1;
                }
            }
            v.sort_unstable();
            println!(
                "walls({walls_n},{thick},{gap}) step={step} bias={bias}: unsolved={unsolved} dist(ms)={:?}",
                v.iter().map(|&t| t / 1_000_000).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn percentiles_use_the_sorted_index_idiom() {
        let v = vec![1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.5), 5);
        assert_eq!(percentile(&v, 0.99), 9);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
