//! Planning-as-a-service load benchmark (DES backend, committed as
//! `BENCH_serve.json`).
//!
//! The claim under test (DESIGN.md §15): amortizing roadmap construction
//! across queries — build once per `(environment, robot)` key, answer
//! every subsequent query against the cached snapshot — is what makes a
//! query front door viable. The benchmark drives a fixed multi-tenant
//! workload (three snapshot keys, mixed interactive/batch classes) at
//! three offered-load levels (arrival-gap scaling) through
//! [`smp_serve::Server`], once **cold** (first query of each key pays
//! the build) and once **warm** (prewarmed cache), and reports p50/p99
//! request latency plus throughput per level. The headline assertions:
//! warm p50 beats cold p50 at every level, and the batched run's answer
//! digests are byte-identical to the sequential replay's.
//!
//! Everything runs on the DES in virtual time, so the whole report is
//! deterministic; the committed JSON carries a `gate` array of per-level
//! FNV digests over the first [`GATE_REQUESTS`] settled answers (quick
//! and full mode share the prefix, so `--quick --check` validates the
//! committed full baseline).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smp_geom::Point;
use smp_serve::{fnv_mix, PlanRequest, QueryClass, ServeConfig, ServeReport, Server};

/// Requests whose answer digests form the deterministic gate (= the
/// quick per-level request count, so quick and full runs gate
/// identically).
pub const GATE_REQUESTS: usize = 24;

/// FNV-1a offset basis (shared with `smp_serve`'s digests).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The tenant mix: three distinct snapshot keys, so a cold run pays
/// three roadmap builds and a warm run pays none.
fn tenant_keys() -> [(&'static str, &'static str); 3] {
    [
        ("small_cube", "point"),
        ("small_cube", "probe"),
        ("free", "point"),
    ]
}

/// One offered-load level's statistics.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Level label (`low` / `med` / `high`).
    pub label: String,
    /// Mean inter-arrival gap in virtual ns (smaller = higher load).
    pub arrival_gap_ns: u64,
    /// Requests served at this level.
    pub requests: usize,
    /// Requests the cold run completed (must equal `requests`).
    pub completed: u64,
    /// Cold-run median latency (virtual ns; includes snapshot builds).
    pub cold_p50_ns: u64,
    /// Cold-run 99th-percentile latency (virtual ns).
    pub cold_p99_ns: u64,
    /// Warm-run median latency (virtual ns; cache prewarmed).
    pub warm_p50_ns: u64,
    /// Warm-run 99th-percentile latency (virtual ns).
    pub warm_p99_ns: u64,
    /// Warm-run throughput in completed requests per virtual second.
    pub throughput_qps: f64,
    /// Cold-run end-to-end virtual makespan.
    pub cold_makespan_ns: u64,
    /// Warm-run end-to-end virtual makespan.
    pub warm_makespan_ns: u64,
    /// Executor batches the warm run submitted.
    pub batches: u64,
    /// FNV digest over the first [`GATE_REQUESTS`] `(seq, answer)` pairs
    /// of the cold batched run — the committed gate value.
    pub gate_digest: u64,
    /// Same prefix digest from the warm batched run.
    pub warm_gate: u64,
    /// Same prefix digest from the sequential one-at-a-time replay.
    pub sequential_gate: u64,
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// Quick mode serves the gate prefix only; full serves 4× that.
    pub quick: bool,
    /// Requests per level.
    pub requests: usize,
    /// Stats per offered-load level, low to high.
    pub levels: Vec<LoadStats>,
}

impl ServeLoadReport {
    /// Stats for `label`, if the sweep produced them.
    pub fn level(&self, label: &str) -> Option<&LoadStats> {
        self.levels.iter().find(|l| l.label == label)
    }
}

/// The default offered-load levels: label + mean inter-arrival gap,
/// sized around the measured warm per-query virtual cost (~0.5 ms on
/// the hopper model) so `low` is under-loaded, `med` is near the
/// service rate, and `high` is saturated.
pub fn default_levels() -> Vec<(String, u64)> {
    vec![
        ("low".to_string(), 1_000_000),
        ("med".to_string(), 250_000),
        ("high".to_string(), 62_500),
    ]
}

/// The deterministic per-level workload: `n` requests cycling through
/// the three tenant keys, every fourth request batch-class, endpoints
/// drawn from a seeded RNG, arrivals spaced by `arrival_gap_ns`. The
/// first [`GATE_REQUESTS`] requests are identical regardless of `n`,
/// which is what lets quick and full runs share the gate.
pub fn workload(n: usize, arrival_gap_ns: u64, seed: u64) -> Vec<PlanRequest> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E21_10AD);
    (0..n)
        .map(|i| {
            // Blocky key assignment (runs of 6 per tenant) so consecutive
            // same-snapshot requests coalesce into real executor batches.
            let (env, robot) = tenant_keys()[(i / 6) % 3];
            // Endpoint bands clear of small_cube's central obstacle
            // (~[0.3, 0.7] per axis) even after robot-radius inflation,
            // so every request completes (Solved or NoPath, never
            // Rejected).
            let start = Point::splat(rng.random_range(0.05f64..0.25));
            let goal = Point::splat(rng.random_range(0.75f64..0.95));
            let mut req = PlanRequest::new(env, robot, start, goal);
            if i % 4 == 3 {
                req.class = QueryClass::Batch;
            }
            req.arrival_ns = i as u64 * arrival_gap_ns;
            req
        })
        .collect()
}

/// FNV fold over the first [`GATE_REQUESTS`] settled `(seq, digest)`
/// pairs — the prefix identity shared by quick and full runs.
fn prefix_digest(report: &ServeReport) -> u64 {
    let mut h = FNV_OFFSET;
    for r in report
        .records
        .iter()
        .filter(|r| r.seq < GATE_REQUESTS as u64)
    {
        h = fnv_mix(h, r.seq);
        h = fnv_mix(h, r.digest);
    }
    h
}

fn latency_stats(report: &ServeReport) -> (u64, u64) {
    (
        report.latency_percentile(0.5),
        report.latency_percentile(0.99),
    )
}

/// Run the sweep. `quick` serves [`GATE_REQUESTS`] requests per level;
/// full serves 4× that for better tail resolution. The gate digests are
/// identical either way. `cfg` defaults keep the sweep on the DES
/// backend so every number is virtual and deterministic.
pub fn run(quick: bool) -> ServeLoadReport {
    run_with(quick, &ServeConfig::default(), &default_levels())
}

/// [`run`] with an explicit server configuration and load levels (tests
/// shrink the snapshot build and the arrival gaps together so debug
/// runs stay fast while the claims still bind).
pub fn run_with(quick: bool, cfg: &ServeConfig, levels: &[(String, u64)]) -> ServeLoadReport {
    let requests = if quick {
        GATE_REQUESTS
    } else {
        GATE_REQUESTS * 4
    };
    let mut out = Vec::new();
    for (label, gap) in levels.iter().cloned() {
        // Same seed at every level: the query set is identical, only the
        // arrival spacing changes — the sweep isolates the load effect.
        let reqs = workload(requests, gap, 0x10AD);

        let mut cold = Server::new(cfg.clone());
        for r in reqs.clone() {
            cold.submit(r);
        }
        let cold_report = cold.run().expect("cold batched run");

        let mut warm = Server::new(cfg.clone());
        for (env, robot) in tenant_keys() {
            warm.prewarm(env, robot).expect("prewarm");
        }
        for r in reqs.clone() {
            warm.submit(r);
        }
        let warm_report = warm.run().expect("warm batched run");

        let mut seq = Server::new(cfg.clone());
        for r in reqs {
            seq.submit(r);
        }
        let seq_report = seq.run_sequential().expect("sequential replay");

        let (cold_p50, cold_p99) = latency_stats(&cold_report);
        let (warm_p50, warm_p99) = latency_stats(&warm_report);
        out.push(LoadStats {
            label,
            arrival_gap_ns: gap,
            requests,
            completed: cold_report.ledger.completed,
            cold_p50_ns: cold_p50,
            cold_p99_ns: cold_p99,
            warm_p50_ns: warm_p50,
            warm_p99_ns: warm_p99,
            throughput_qps: warm_report.ledger.completed as f64
                / (warm_report.makespan_ns.max(1) as f64 / 1e9),
            cold_makespan_ns: cold_report.makespan_ns,
            warm_makespan_ns: warm_report.makespan_ns,
            batches: warm_report.batches,
            gate_digest: prefix_digest(&cold_report),
            warm_gate: prefix_digest(&warm_report),
            sequential_gate: prefix_digest(&seq_report),
        });
    }
    ServeLoadReport {
        quick,
        requests,
        levels: out,
    }
}

/// Deterministic gate lines, one per offered-load level.
pub fn gate_lines(report: &ServeLoadReport) -> Vec<String> {
    report
        .levels
        .iter()
        .map(|l| format!("level-{}={:#018x}", l.label, l.gate_digest))
        .collect()
}

/// The benchmark's headline claims, asserted per level:
///
/// 1. every request completes (valid keys, no deadlines — nothing may
///    be lost or rejected),
/// 2. the batched run's answer prefix is byte-identical to the
///    sequential replay's (the determinism oracle), and the warm run
///    answers exactly as the cold run does (the cache changes latency,
///    never answers),
/// 3. the warm cache never hurts (warm p50 ≤ cold p50 at every level),
///    and at the saturated level — where queueing, not arrival spacing,
///    sets the median latency — warm p50 is *strictly* below cold p50:
///    the amortization claim itself. (At low offered load, arrival gaps
///    can hide the build from the median request; that is honest
///    queueing behaviour, reported but not failed.)
///
/// Returns violation messages (empty = pass).
pub fn load_violations(report: &ServeLoadReport) -> Vec<String> {
    let mut v = Vec::new();
    if report.levels.len() < 3 {
        v.push(format!(
            "sweep produced {} offered-load levels, need >= 3",
            report.levels.len()
        ));
    }
    if let Some(top) = report.levels.last() {
        if top.warm_p50_ns >= top.cold_p50_ns {
            v.push(format!(
                "{}: warm p50 {}ns does not beat cold p50 {}ns at the saturated level",
                top.label, top.warm_p50_ns, top.cold_p50_ns
            ));
        }
    }
    for l in &report.levels {
        if l.completed != l.requests as u64 {
            v.push(format!(
                "{}: only {}/{} requests completed",
                l.label, l.completed, l.requests
            ));
        }
        if l.gate_digest != l.sequential_gate {
            v.push(format!(
                "{}: batched answers {:#018x} != sequential replay {:#018x}",
                l.label, l.gate_digest, l.sequential_gate
            ));
        }
        if l.gate_digest != l.warm_gate {
            v.push(format!(
                "{}: warm-cache answers {:#018x} != cold answers {:#018x}",
                l.label, l.warm_gate, l.gate_digest
            ));
        }
        if l.warm_p50_ns > l.cold_p50_ns {
            v.push(format!(
                "{}: warm p50 {}ns is worse than cold p50 {}ns",
                l.label, l.warm_p50_ns, l.cold_p50_ns
            ));
        }
        if l.warm_makespan_ns > l.cold_makespan_ns {
            v.push(format!(
                "{}: warm makespan {}ns exceeds cold makespan {}ns",
                l.label, l.warm_makespan_ns, l.cold_makespan_ns
            ));
        }
    }
    v
}

/// Serialize as `BENCH_serve.json` (hand-rolled, same idiom as
/// [`crate::kernels::to_json`]).
pub fn to_json(report: &ServeLoadReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"smp-bench/serve/v1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if report.quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"requests_per_level\": {},\n", report.requests));
    s.push_str(&format!("  \"gate_requests\": {GATE_REQUESTS},\n"));
    s.push_str("  \"levels\": [\n");
    for (i, l) in report.levels.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!(
            "\"label\": \"{}\", \"arrival_gap_ns\": {}, \"requests\": {}, \"completed\": {}, \"cold_p50_ns\": {}, \"cold_p99_ns\": {}, \"warm_p50_ns\": {}, \"warm_p99_ns\": {}, \"throughput_qps\": {:.2}, \"cold_makespan_ns\": {}, \"warm_makespan_ns\": {}, \"batches\": {}, \"digest\": \"{:#018x}\"",
            l.label,
            l.arrival_gap_ns,
            l.requests,
            l.completed,
            l.cold_p50_ns,
            l.cold_p99_ns,
            l.warm_p50_ns,
            l.warm_p99_ns,
            l.throughput_qps,
            l.cold_makespan_ns,
            l.warm_makespan_ns,
            l.batches,
            l.gate_digest
        ));
        s.push_str(if i + 1 < report.levels.len() {
            "},\n"
        } else {
            "}\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"gate\": [\n");
    let lines = gate_lines(report);
    for (i, l) in lines.iter().enumerate() {
        s.push_str(&format!(
            "    \"{l}\"{}\n",
            if i + 1 < lines.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compare this run's gate digests against a committed
/// `BENCH_serve.json`. Latency and throughput are *not* gated beyond
/// the [`load_violations`] assertions — the answer digests must never
/// drift.
pub fn check_against(report: &ServeLoadReport, committed_json: &str) -> Vec<String> {
    let committed = crate::kernels::parse_gate(committed_json);
    let current = gate_lines(report);
    let mut drift = Vec::new();
    if committed.is_empty() {
        drift.push("committed baseline has no gate array".to_string());
        return drift;
    }
    for line in &current {
        let key = line.split('=').next().unwrap_or_default();
        match committed.iter().find(|c| c.split('=').next() == Some(key)) {
            None => drift.push(format!("gate {key} missing from committed baseline")),
            Some(c) if c != line => {
                drift.push(format!("gate drift: committed `{c}` vs current `{line}`"))
            }
            Some(_) => {}
        }
    }
    for c in &committed {
        let key = c.split('=').next().unwrap_or_default();
        if !current.iter().any(|l| l.split('=').next() == Some(key)) {
            drift.push(format!("gate {key} present in baseline but not produced"));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_serve::SnapshotParams;

    fn synthetic_level(label: &str, gate: u64) -> LoadStats {
        LoadStats {
            label: label.into(),
            arrival_gap_ns: 1_000,
            requests: 4,
            completed: 4,
            cold_p50_ns: 500,
            cold_p99_ns: 900,
            warm_p50_ns: 100,
            warm_p99_ns: 300,
            throughput_qps: 42.0,
            cold_makespan_ns: 2_000,
            warm_makespan_ns: 1_000,
            batches: 2,
            gate_digest: gate,
            warm_gate: gate,
            sequential_gate: gate,
        }
    }

    #[test]
    fn json_round_trips_through_the_gate_checker() {
        // A tiny synthetic report exercises serialization + gate parsing
        // without paying for the real sweep in debug tests.
        let report = ServeLoadReport {
            quick: true,
            requests: 4,
            levels: vec![
                synthetic_level("low", 0xabc),
                synthetic_level("med", 0xdef),
                synthetic_level("high", 0x123),
            ],
        };
        let json = to_json(&report);
        assert!(json.contains("smp-bench/serve/v1"));
        assert!(check_against(&report, &json).is_empty());
        assert!(load_violations(&report).is_empty());
        let mut tampered = report.clone();
        tampered.levels[1].gate_digest ^= 1;
        assert!(!check_against(&tampered, &json).is_empty());
        // The tampered digest also breaks the batched-vs-sequential claim.
        assert!(!load_violations(&tampered).is_empty());
        // Equality at a low-load level is tolerated (arrival spacing can
        // hide the build there) but never at the saturated level, and a
        // warm cache that makes things *worse* fails anywhere.
        let mut even = report.clone();
        even.levels[0].warm_p50_ns = even.levels[0].cold_p50_ns;
        assert!(load_violations(&even).is_empty());
        let mut slow = report.clone();
        slow.levels[2].warm_p50_ns = slow.levels[2].cold_p50_ns;
        assert!(!load_violations(&slow).is_empty());
        let mut worse = report.clone();
        worse.levels[0].warm_p50_ns = worse.levels[0].cold_p50_ns + 1;
        assert!(!load_violations(&worse).is_empty());
        let mut lost = report;
        lost.levels[2].completed = 3;
        assert!(!load_violations(&lost).is_empty());
    }

    #[test]
    fn quick_and_full_share_the_gate_prefix_and_claims_hold() {
        // A shrunken snapshot keeps the real sweep fast enough for debug
        // tests while still exercising the whole cold/warm/sequential
        // pipeline.
        let cfg = ServeConfig {
            snapshot: SnapshotParams {
                regions_target: 8,
                attempts_per_region: 2,
                ..SnapshotParams::default()
            },
            ..ServeConfig::default()
        };
        // Gaps scaled down with the snapshot so the cold build still
        // dominates the arrival window (the warm-beats-cold claim must
        // bind in the shrunken sweep exactly as it does in the real one).
        let levels = vec![
            ("low".to_string(), 20_000u64),
            ("med".to_string(), 5_000),
            ("high".to_string(), 1_250),
        ];
        let quick = run_with(true, &cfg, &levels);
        let full = run_with(false, &cfg, &levels);
        assert!(
            load_violations(&quick).is_empty(),
            "{:?}",
            load_violations(&quick)
        );
        assert!(
            load_violations(&full).is_empty(),
            "{:?}",
            load_violations(&full)
        );
        assert_eq!(gate_lines(&quick), gate_lines(&full));
        // The quick run must validate the full run's committed artifact.
        assert!(check_against(&quick, &to_json(&full)).is_empty());
        // Higher offered load (smaller gaps) compresses the makespan.
        assert!(
            full.level("high").unwrap().warm_makespan_ns
                <= full.level("low").unwrap().warm_makespan_ns
        );
    }

    #[test]
    fn workload_prefix_is_independent_of_length() {
        let short = workload(GATE_REQUESTS, 1_000, 7);
        let long = workload(GATE_REQUESTS * 4, 1_000, 7);
        assert_eq!(short[..], long[..GATE_REQUESTS]);
    }
}
