//! Developer probe: detailed phase/balance diagnostics for one workload.
//!
//! `cargo run --release -p smp-bench --bin probe -- [p ...] [--trace-out FILE] [--metrics-out FILE]`
//!
//! `--trace-out FILE` records the first PRM run of the sweep with the
//! observability tracer and writes Chrome `trace_event` JSON to `FILE`
//! (load it in `chrome://tracing` or <https://ui.perfetto.dev>).
//! `--metrics-out FILE` writes that run's flat metrics snapshot as CSV.
//!
//! `probe --replay FILE` re-executes a shrunk smp-check repro file (see
//! `crates/check`): it runs the case twice, asserts the two runs are
//! bit-identical, and prints the oracle verdicts. Exit status 0 means
//! every invariant held.
//!
//! `probe bench [...]` runs the kernel benchmark harness (see
//! `smp_bench::kernels`); `probe scaling [...]` runs the live-backend
//! strong-scaling harness (see `smp_bench::scaling`).
//!
//! `probe portfolio [...]` runs the DES restart-portfolio tail benchmark
//! (see `smp_bench::portfolio`) and emits/validates
//! `BENCH_portfolio.json`.
//!
//! `probe serve [...]` runs the planning-as-a-service load benchmark
//! (see `smp_bench::serve`) and emits/validates `BENCH_serve.json`.
//!
//! `probe resilience [...]` runs the live PRM under a fault plan built
//! from the command line (injected panics, stragglers, dropped steal
//! grants, deadline, pre-cancellation), verifies the merged-roadmap
//! digest against a fault-free baseline, and prints the resilience
//! ledger and degradation ratio — the quickstart for DESIGN.md §13.

use smp_bench::figures::Suite;
use smp_bench::HarnessConfig;
use smp_core::{
    assemble_prm_roadmap, build_prm_workload, roadmap_digest, run_parallel_prm,
    run_parallel_prm_live, run_parallel_prm_live_controlled, run_parallel_prm_observed,
    run_parallel_rrt, work_cost, ParallelPrmConfig, Strategy, WeightKind,
};
use smp_runtime::{
    CancelToken, LiveControl, LiveFaultPlan, LiveOutcome, LiveTuning, MachineModel, StealConfig,
    StealPolicyKind, Tracer,
};
use std::time::Duration;

fn rrt_probe() {
    let mut suite = Suite::new(HarnessConfig::default());
    let machine = MachineModel::opteron();
    let w = suite.rrt_env("mixed");
    let mut costs: Vec<u64> = w
        .regions
        .iter()
        .map(|r| work_cost(&r.work, &machine.ops))
        .collect();
    costs.sort_unstable();
    let n = costs.len();
    let pct = |q: f64| costs[((n - 1) as f64 * q) as usize];
    println!(
        "branch costs (us): min={} p25={} p50={} p75={} p95={} max={}  total={}ms",
        pct(0.0) / 1000,
        pct(0.25) / 1000,
        pct(0.5) / 1000,
        pct(0.75) / 1000,
        pct(0.95) / 1000,
        pct(1.0) / 1000,
        costs.iter().sum::<u64>() / 1_000_000
    );
    // direction-cost correlation: mean cost of cones by x-direction octile
    let raw: Vec<u64> = w
        .regions
        .iter()
        .map(|r| work_cost(&r.work, &machine.ops))
        .collect();
    let mut by_oct = [(0u64, 0u64); 8];
    for (i, c) in raw.iter().enumerate() {
        let x = w.sub.direction(i as u32)[0];
        let o = (((x + 1.0) / 2.0 * 8.0) as usize).min(7);
        by_oct[o].0 += c;
        by_oct[o].1 += 1;
    }
    println!(
        "mean cost by x-octile (us): {:?}",
        by_oct
            .iter()
            .map(|&(s, n)| s / n.max(1) / 1000)
            .collect::<Vec<_>>()
    );
    for p in [8usize, 32, 256] {
        let no_lb = run_parallel_rrt(w, &machine, p, &Strategy::NoLb).expect("sim failed");
        let diff = run_parallel_rrt(
            w,
            &machine,
            p,
            &Strategy::WorkStealing(smp_runtime::StealConfig::new(
                smp_runtime::StealPolicyKind::Diffusive,
            )),
        )
        .expect("sim failed");
        println!(
            "p={p:4} nolb={:.4}s (node {:.4}, busy_max {:.4}, ideal {:.4}) diff={:.4}s (node {:.4})",
            no_lb.total_time as f64 / 1e9,
            no_lb.phases.node_connection as f64 / 1e9,
            *no_lb.construction.per_pe_busy.iter().max().unwrap() as f64 / 1e9,
            no_lb.construction.ideal_makespan() as f64 / 1e9,
            diff.total_time as f64 / 1e9,
            diff.phases.node_connection as f64 / 1e9,
        );
    }
}

/// Re-execute a shrunk smp-check repro deterministically: run it twice,
/// require bit-identical reports, and report the oracle verdicts.
fn replay_probe(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read repro {path}: {e}"));
    let spec =
        smp_check::repro::parse(&text).unwrap_or_else(|e| panic!("cannot parse repro {path}: {e}"));
    println!(
        "replaying {path}: {} tasks on {} PEs ({}, steal {})",
        spec.num_tasks(),
        spec.num_pes(),
        spec.machine.name(),
        if spec.steal.is_some() { "on" } else { "off" },
    );
    let first = spec.run();
    let second = spec.run();
    match (&first, &second) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "replay is not deterministic"),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "replay is not deterministic"
        ),
        _ => panic!("replay is not deterministic: one run failed, one succeeded"),
    }
    println!("determinism: two runs bit-identical");
    let violations = smp_check::check_case(&spec);
    if violations.is_empty() {
        println!("oracles: all satisfied");
    } else {
        for v in &violations {
            eprintln!("oracle violation: {v}");
        }
        std::process::exit(1);
    }
}

/// Kernel benchmark harness: `probe bench [--quick] [--out FILE] [--check FILE]`.
///
/// Runs the PR-4 hot-path kernels against their pre-overhaul baselines
/// (smp_bench::kernels), prints per-kernel speedups, optionally writes
/// `BENCH_kernels.json`, and optionally gates the run's deterministic work
/// counters against a committed baseline (exit 1 on drift).
fn bench_probe(args: impl Iterator<Item = String>) {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next(),
            "--check" => check = args.next(),
            other => panic!("unknown bench argument: {other}"),
        }
    }
    let reports = smp_bench::kernels::run(quick);
    for r in &reports {
        println!(
            "{:22} baseline={:>10.3}ms optimized={:>10.3}ms speedup={:.2}x",
            r.name,
            r.baseline_ns as f64 / 1e6,
            r.optimized_ns as f64 / 1e6,
            r.speedup()
        );
    }
    if let Some(path) = &out {
        std::fs::write(path, smp_bench::kernels::to_json(&reports, quick))
            .expect("write bench json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let drift = smp_bench::kernels::check_against(&reports, &committed);
        if drift.is_empty() {
            println!("gate: all counters match {path}");
        } else {
            for d in &drift {
                eprintln!("gate: {d}");
            }
            std::process::exit(1);
        }
    }
}

/// Strong-scaling harness over the live and dist backends:
/// `probe scaling [--quick] [--out FILE] [--check FILE]`.
///
/// Runs the parallel PRM live on 1/2/4/8 host threads per strategy
/// (smp_bench::scaling), plus — when the `smp-dist-worker` binary is
/// present — on 1/2/4 worker *processes*, prints wall times and
/// speedups, optionally writes `BENCH_scaling.json`, and optionally
/// gates the merged-roadmap digests against a committed artifact (exit 1
/// on drift). Digest equality across backends and thread counts is
/// always enforced; the ≥1.5× speedup expectation at 4 threads is
/// asserted only for live rows on hosts with ≥4 cores — wall times from
/// smaller hosts (and all dist wall times) are recorded honestly, not
/// gated.
fn scaling_probe(args: impl Iterator<Item = String>) {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next(),
            "--check" => check = args.next(),
            other => panic!("unknown scaling argument: {other}"),
        }
    }
    let report = smp_bench::scaling::run(quick);
    println!("host parallelism: {}", report.host_parallelism);
    for r in &report.runs {
        let speedup = report
            .speedup(r.backend, r.env, &r.strategy, r.threads)
            .unwrap_or(f64::NAN);
        println!(
            "{:4} {:9} {:15} t={} wall={:>9.3}ms node={:>9.3}ms speedup={:.2}x hits={:>4} digest={:#018x}",
            r.backend, r.env, r.strategy, r.threads, r.wall_ms, r.node_ms, speedup, r.steal_hits, r.digest
        );
    }
    let digest_violations = report.digest_violations();
    for v in &digest_violations {
        eprintln!("digest violation: {v}");
    }
    if report.host_parallelism >= 4 {
        for v in report.speedup_violations(1.5) {
            eprintln!("speedup violation: {v}");
        }
    } else {
        eprintln!(
            "note: host has {} core(s); strong-scaling speedups are recorded but not asserted",
            report.host_parallelism
        );
    }
    if let Some(path) = &out {
        std::fs::write(path, smp_bench::scaling::to_json(&report)).expect("write scaling json");
        eprintln!("wrote {path}");
    }
    let mut failed = !digest_violations.is_empty();
    if let Some(path) = &check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let drift = smp_bench::scaling::check_against(&report, &committed);
        if drift.is_empty() {
            println!("gate: all digests match {path}");
        } else {
            for d in &drift {
                eprintln!("gate: {d}");
            }
            failed = true;
        }
    }
    if report.host_parallelism >= 4 && !report.speedup_violations(1.5).is_empty() {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Restart-portfolio tail-latency probe:
/// `probe portfolio [--quick] [--out FILE] [--check FILE]`.
///
/// Runs the DES restart-portfolio sweep (see `smp_bench::portfolio`),
/// prints per-configuration tail statistics, asserts the headline claim
/// (the Luby portfolio must beat the single run's p99), and optionally
/// writes/validates `BENCH_portfolio.json`. Everything is virtual time,
/// so the gate digests are deterministic in both quick and full mode.
fn portfolio_probe(args: impl Iterator<Item = String>) {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next(),
            "--check" => check = args.next(),
            other => panic!("unknown portfolio argument: {other}"),
        }
    }
    let report = smp_bench::portfolio::run(quick);
    println!(
        "restart portfolio on the heavy-tail walls scenario ({} DES trials/config):",
        report.trials
    );
    for c in &report.configs {
        println!(
            "{:10} solved={:>3}/{:<3} p50={:>12}ns p99={:>12}ns tail_mass={:>6.3} wasted={:>11} rounds={:>5.2} digest={:#018x}",
            c.label,
            c.solved,
            c.trials,
            c.p50_ns,
            c.p99_ns,
            c.tail_mass,
            c.mean_wasted_vcost,
            c.mean_rounds,
            c.gate_digest
        );
    }
    let tail = smp_bench::portfolio::tail_violations(&report);
    for v in &tail {
        eprintln!("tail violation: {v}");
    }
    if let Some(path) = &out {
        std::fs::write(path, smp_bench::portfolio::to_json(&report)).expect("write portfolio json");
        eprintln!("wrote {path}");
    }
    let mut failed = !tail.is_empty();
    if let Some(path) = &check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let drift = smp_bench::portfolio::check_against(&report, &committed);
        if drift.is_empty() {
            println!("gate: all digests match {path}");
        } else {
            for d in &drift {
                eprintln!("gate: {d}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Planning-as-a-service load probe:
/// `probe serve [--quick] [--out FILE] [--check FILE]`.
///
/// Runs the serve load sweep (see `smp_bench::serve`), prints per-level
/// cold/warm latency and throughput, asserts the headline claims (warm
/// p50 beats cold p50; batched answers byte-identical to sequential
/// replay), and optionally writes/validates `BENCH_serve.json`.
/// Everything is DES virtual time, so the gate digests are
/// deterministic in both quick and full mode.
fn serve_probe(args: impl Iterator<Item = String>) {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next(),
            "--check" => check = args.next(),
            other => panic!("unknown serve argument: {other}"),
        }
    }
    let report = smp_bench::serve::run(quick);
    println!(
        "serve load sweep ({} requests/level over 3 tenant keys, DES virtual time):",
        report.requests
    );
    for l in &report.levels {
        println!(
            "{:5} gap={:>9}ns cold p50={:>12}ns p99={:>12}ns | warm p50={:>12}ns p99={:>12}ns | {:>9.1} q/s batches={:>3} digest={:#018x}",
            l.label,
            l.arrival_gap_ns,
            l.cold_p50_ns,
            l.cold_p99_ns,
            l.warm_p50_ns,
            l.warm_p99_ns,
            l.throughput_qps,
            l.batches,
            l.gate_digest
        );
    }
    let violations = smp_bench::serve::load_violations(&report);
    for v in &violations {
        eprintln!("load violation: {v}");
    }
    if let Some(path) = &out {
        std::fs::write(path, smp_bench::serve::to_json(&report)).expect("write serve json");
        eprintln!("wrote {path}");
    }
    let mut failed = !violations.is_empty();
    if let Some(path) = &check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let drift = smp_bench::serve::check_against(&report, &committed);
        if drift.is_empty() {
            println!("gate: all digests match {path}");
        } else {
            for d in &drift {
                eprintln!("gate: {d}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Live fault-injection probe:
/// `probe resilience [--threads N] [--panic W:AFTER] [--straggler W:US:FIRST]
///                   [--drop-rate R] [--deadline-ms MS] [--cancelled]`.
///
/// Runs the live PRM once fault-free and once under the requested plan
/// (each flag is repeatable), checks the two merged-roadmap digests are
/// byte-identical whenever recovery completes, and prints the resilience
/// ledger plus the wall-clock degradation ratio. A deadline/cancel stop
/// prints the structured partial outcome and still exits 0 — stopping
/// cooperatively is the contract, not a failure. Exit 1 means digest
/// drift or an unrecoverable run.
fn resilience_probe(args: impl Iterator<Item = String>) {
    let mut threads = 4usize;
    let mut plan = LiveFaultPlan::new(0xFA_017);
    let mut deadline_ms: Option<u64> = None;
    let mut cancelled = false;
    let mut args = args;
    let split = |s: &str| -> Vec<u64> {
        s.split(':')
            .map(|part| {
                part.parse()
                    .unwrap_or_else(|e| panic!("bad number {part:?} in {s:?}: {e}"))
            })
            .collect()
    };
    while let Some(a) = args.next() {
        let mut take = |what: &str| args.next().unwrap_or_else(|| panic!("{a} needs {what}"));
        match a.as_str() {
            "--threads" => threads = take("a count").parse().expect("bad --threads"),
            "--panic" => match split(&take("W:AFTER"))[..] {
                [w, after] => plan = plan.with_panic(w as usize, after as usize),
                _ => panic!("--panic wants WORKER:AFTER_TASKS"),
            },
            "--straggler" => match split(&take("W:US:FIRST"))[..] {
                [w, us, first] => plan = plan.with_straggler(w as usize, us, first as usize),
                _ => panic!("--straggler wants WORKER:SLEEP_US:FIRST_TASKS"),
            },
            "--drop-rate" => {
                plan = plan.with_grant_drop_rate(take("a rate").parse().expect("bad --drop-rate"))
            }
            "--deadline-ms" => {
                deadline_ms = Some(take("milliseconds").parse().expect("bad --deadline-ms"))
            }
            "--cancelled" => cancelled = true,
            other => panic!("unknown resilience argument: {other}"),
        }
    }
    let env = smp_geom::envs::med_cube();
    let cfg = ParallelPrmConfig {
        regions_target: 256,
        attempts_per_region: 10,
        k_neighbors: 5,
        lp_resolution: 0.012,
        robot_radius: 0.1,
        ..ParallelPrmConfig::new(&env)
    };
    let strategy = Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Hybrid(8)));

    let (base_w, base_run) = run_parallel_prm_live(&cfg, threads, &strategy, LiveTuning::default())
        .expect("fault-free baseline run failed");
    let base_digest = roadmap_digest(&assemble_prm_roadmap(&base_w));
    println!(
        "baseline : t={threads} wall={:.3}ms digest={base_digest:#018x}",
        base_run.total_time as f64 / 1e6
    );
    // sequential reference digest: the live baseline must already match it
    let seq_digest = roadmap_digest(&assemble_prm_roadmap(&build_prm_workload(&cfg)));
    assert_eq!(base_digest, seq_digest, "fault-free live digest drift");

    println!(
        "fault plan: {} panic(s), {} straggler(s), drop-rate {}{}{}",
        plan.panics.len(),
        plan.stragglers.len(),
        plan.grant_drop_rate,
        deadline_ms.map_or(String::new(), |ms| format!(", deadline {ms}ms")),
        if cancelled { ", pre-cancelled" } else { "" },
    );
    let mut control = LiveControl::new(LiveTuning::default()).with_faults(plan);
    if let Some(ms) = deadline_ms {
        control = control.with_deadline(Duration::from_millis(ms));
    }
    if cancelled {
        let token = CancelToken::new();
        token.cancel();
        control = control.with_cancel(token);
    }
    let out = run_parallel_prm_live_controlled(&cfg, threads, &strategy, &control, None)
        .unwrap_or_else(|e| panic!("unrecoverable faulted run: {e}"));
    match out {
        LiveOutcome::Partial(p) => {
            println!(
                "stopped   : phase={} status={:?} (partial results, no digest)",
                p.phase, p.status
            );
        }
        LiveOutcome::Complete((w, run)) => {
            let digest = roadmap_digest(&assemble_prm_roadmap(&w));
            let res = &run.construction.resilience;
            println!(
                "faulted   : wall={:.3}ms digest={digest:#018x} ({})",
                run.total_time as f64 / 1e6,
                if digest == base_digest {
                    "matches baseline"
                } else {
                    "DIGEST DRIFT"
                },
            );
            println!(
                "ledger    : crashes={} recovered={} reexecuted={} grant_drops={} wasted={:.3}ms",
                res.crashes,
                res.tasks_recovered,
                res.tasks_reexecuted,
                res.retransmissions,
                res.wasted_work as f64 / 1e6,
            );
            println!(
                "degradation: {:.3}x (construction {:.3}x)",
                run.total_time as f64 / base_run.total_time.max(1) as f64,
                run.construction
                    .degradation_ratio(base_run.construction.makespan),
            );
            if digest != base_digest {
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("rrt") {
        rrt_probe();
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("bench") {
        bench_probe(std::env::args().skip(2));
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("scaling") {
        scaling_probe(std::env::args().skip(2));
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("portfolio") {
        portfolio_probe(std::env::args().skip(2));
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("serve") {
        serve_probe(std::env::args().skip(2));
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("resilience") {
        resilience_probe(std::env::args().skip(2));
        return;
    }
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut ps: Vec<usize> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--replay" => {
                let path = args.next().expect("--replay needs a repro file");
                replay_probe(&path);
                return;
            }
            "--trace-out" => trace_out = args.next(),
            "--metrics-out" => metrics_out = args.next(),
            other => {
                if let Ok(p) = other.parse() {
                    ps.push(p);
                }
            }
        }
    }
    let ps = if ps.is_empty() {
        vec![96, 192, 384]
    } else {
        ps
    };
    let mut suite = Suite::new(HarnessConfig::default());
    let machine = MachineModel::hopper();
    let mut first_run = true;
    for p in ps {
        for s in [
            Strategy::NoLb,
            Strategy::Repartition(WeightKind::SampleCount),
            Strategy::WorkStealing(smp_runtime::StealConfig::new(
                smp_runtime::StealPolicyKind::Hybrid(8),
            )),
            Strategy::WorkStealing(smp_runtime::StealConfig::new(
                smp_runtime::StealPolicyKind::RandK(8),
            )),
        ] {
            let w = suite.hopper_medcube();
            // observe the first run of the sweep when a dump was requested
            let observe = first_run && (trace_out.is_some() || metrics_out.is_some());
            first_run = false;
            let r = if observe {
                let mut tr = Tracer::new();
                let r = run_parallel_prm_observed(w, &machine, p, &s, None, None, Some(&mut tr))
                    .expect("sim failed");
                if let Some(path) = &trace_out {
                    std::fs::write(path, tr.to_chrome_json()).expect("write trace");
                    eprintln!("wrote Chrome trace ({} events) to {path}", tr.len());
                }
                if let Some(path) = &metrics_out {
                    std::fs::write(path, r.metrics.to_csv()).expect("write metrics");
                    eprintln!("wrote {} metrics rows to {path}", r.metrics.samples.len());
                }
                r
            } else {
                run_parallel_prm(w, &machine, p, &s).expect("sim failed")
            };
            let busy_max = r.construction.per_pe_busy.iter().max().unwrap();
            let busy_sum: u64 = r.construction.per_pe_busy.iter().sum();
            println!(
                "p={p:4} {:15} total={:.4}s gen+lb(other)={:.4}s node={:.4}s regconn={:.4}s  node_busy_max={:.4}s node_ideal={:.4}s migr={} cut={}",
                r.strategy_label,
                r.total_time as f64 / 1e9,
                r.phases.other as f64 / 1e9,
                r.phases.node_connection as f64 / 1e9,
                r.phases.region_connection as f64 / 1e9,
                *busy_max as f64 / 1e9,
                busy_sum as f64 / 1e9 / p as f64,
                r.migrations,
                r.edge_cut,
            );
        }
    }
}
