//! Figure-regeneration harness.
//!
//! ```text
//! cargo run --release -p smp-bench --bin figures -- all          # every figure
//! cargo run --release -p smp-bench --bin figures -- fig5a fig6   # a subset
//! cargo run --release -p smp-bench --bin figures -- ablations    # ablation suite
//! cargo run --release -p smp-bench --bin figures -- --quick all  # smoke scale
//! ```
//!
//! Each figure prints an aligned table and writes `results/<id>.csv`.

use smp_bench::figures::{run, Suite, ALL_ABLATIONS, ALL_FIGURES};
use smp_bench::HarnessConfig;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut ids: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => quick = true,
            "all" => ids.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ALL_ABLATIONS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                eprintln!("usage: figures [--quick] <all|ablations|fig4a|fig4b|fig5a|...>");
                eprintln!("figures:   {}", ALL_FIGURES.join(" "));
                eprintln!("ablations: {}", ALL_ABLATIONS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no figures requested; try `figures all` or `figures --help`");
        std::process::exit(2);
    }

    let cfg = if quick {
        HarnessConfig::quick()
    } else {
        HarnessConfig::default()
    };
    let results_dir = PathBuf::from("results");
    let mut suite = Suite::new(cfg);

    for id in &ids {
        let started = std::time::Instant::now();
        let tables = run(id, &mut suite);
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            let file = if tables.len() == 1 {
                format!("{id}.csv")
            } else {
                format!("{id}_{i}.csv")
            };
            let path = results_dir.join(file);
            if let Err(e) = t.write_csv(&path) {
                eprintln!("failed to write {}: {e}", path.display());
            } else {
                eprintln!("[wrote {}]", path.display());
            }
        }
        eprintln!("[{} done in {:.1}s]\n", id, started.elapsed().as_secs_f64());
    }
}
