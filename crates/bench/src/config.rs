//! Harness configuration: experiment scales and processor sweeps.
//!
//! `default()` reproduces the paper's processor counts (96–3072 on the
//! virtual Hopper, 8–256 on the virtual Opteron cluster) over workloads
//! scaled so the whole suite runs in minutes on a laptop; `quick()` is a
//! smoke-test scale used by integration tests.

/// Scales and sweeps for the figure harness.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Regions for the Hopper PRM suite (med-cube; Figs. 5–7, 9).
    pub hopper_regions: usize,
    /// Regions for the Opteron PRM suite (Fig. 8).
    pub opteron_regions: usize,
    /// Cones for the RRT suite (Fig. 10).
    pub rrt_regions: usize,
    /// Sampling attempts per PRM region.
    pub attempts_per_region: usize,
    /// PRM connection neighbours.
    pub k_neighbors: usize,
    /// Ball-robot radius — plays the paper's rigid-body role: it inflates
    /// the effective blocked fraction, which is what creates the med-cube
    /// imbalance magnitude (DESIGN.md §2).
    pub robot_radius: f64,
    /// Local-planner resolution.
    pub lp_resolution: f64,
    /// RRT nodes per region.
    pub nodes_per_region: usize,
    /// RRT iteration budget per region.
    pub rrt_max_iters: usize,
    /// RRT no-progress cut-off per region.
    pub rrt_stall_limit: usize,

    /// Model-environment grid (Fig. 4): columns × rows.
    pub model_columns: usize,
    pub model_rows: usize,
    /// Fig. 4(a) processor sweep.
    pub model_ps: Vec<usize>,
    /// Fig. 4(b) processor sweep.
    pub model_runtime_ps: Vec<usize>,

    /// Fig. 5 sweep (Hopper).
    pub fig5_ps: Vec<usize>,
    /// Fig. 6 sweep (Hopper, higher counts).
    pub fig6_ps: Vec<usize>,
    /// Fig. 7(a) fixed core count.
    pub fig7a_p: usize,
    /// Fig. 7(b) fixed core count.
    pub fig7b_p: usize,
    /// Fig. 8 sweep (Opteron).
    pub fig8_ps: Vec<usize>,
    /// Fig. 9 fixed core counts.
    pub fig9a_p: usize,
    pub fig9b_p: usize,
    /// Fig. 10 sweep (Opteron).
    pub fig10_ps: Vec<usize>,

    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            hopper_regions: 110_592,
            opteron_regions: 16_384,
            rrt_regions: 2_048,
            attempts_per_region: 16,
            k_neighbors: 6,
            robot_radius: 0.14,
            lp_resolution: 0.002,
            nodes_per_region: 32,
            rrt_max_iters: 1_500,
            rrt_stall_limit: 40,
            model_columns: 256,
            model_rows: 8,
            model_ps: vec![2, 4, 8, 16, 32, 64, 128, 256],
            model_runtime_ps: vec![16, 32, 64, 128],
            fig5_ps: vec![96, 192, 384, 768],
            fig6_ps: vec![384, 768, 1536, 3072],
            fig7a_p: 192,
            fig7b_p: 768,
            fig8_ps: vec![32, 64, 128, 256],
            fig9a_p: 96,
            fig9b_p: 768,
            fig10_ps: vec![8, 32, 64, 128, 256],
            seed: 0x5CA1AB1E,
        }
    }
}

impl HarnessConfig {
    /// Smoke-test scale: small workloads and processor counts; used by the
    /// integration tests so the whole harness path is exercised quickly.
    pub fn quick() -> Self {
        HarnessConfig {
            hopper_regions: 2_048,
            opteron_regions: 1_024,
            rrt_regions: 192,
            attempts_per_region: 8,
            k_neighbors: 4,
            lp_resolution: 0.008,
            nodes_per_region: 10,
            rrt_max_iters: 300,
            rrt_stall_limit: 30,
            model_columns: 64,
            model_rows: 4,
            model_ps: vec![2, 4, 8, 16, 32],
            model_runtime_ps: vec![4, 8, 16],
            fig5_ps: vec![24, 48, 96],
            fig6_ps: vec![48, 96, 192],
            fig7a_p: 48,
            fig7b_p: 96,
            fig8_ps: vec![8, 16, 32],
            fig9a_p: 24,
            fig9b_p: 96,
            fig10_ps: vec![4, 8, 16, 32],
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sweeps() {
        let c = HarnessConfig::default();
        assert_eq!(c.fig5_ps, vec![96, 192, 384, 768]);
        assert_eq!(*c.fig6_ps.last().unwrap(), 3072); // "more than 3,000 cores"
        assert_eq!(c.fig7a_p, 192);
        assert_eq!(c.fig9b_p, 768);
        assert_eq!(*c.fig10_ps.first().unwrap(), 8);
    }

    #[test]
    fn quick_is_smaller() {
        let d = HarnessConfig::default();
        let q = HarnessConfig::quick();
        assert!(q.hopper_regions < d.hopper_regions);
        assert!(q.fig5_ps.iter().max() < d.fig5_ps.iter().max());
    }
}
