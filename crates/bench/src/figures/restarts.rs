//! Restart-schedule ablation: Luby vs fixed-cutoff vs no restarts, with
//! and without work stealing, on the heavy-tail narrow-gap scenario.
//!
//! Run via `figures restarts`. The same scenario backs the committed
//! `BENCH_portfolio.json` gate (`probe portfolio`); this table trades
//! the digest gate for a wider grid — every schedule crossed with every
//! runtime strategy — to show the two layers compose: the restart
//! schedule decides the tail, the steal policy merely shuffles which
//! worker runs which attempt (the ledger is strategy-invariant by
//! design, so `wasted` and `rounds` columns repeat across strategies
//! while virtual times may not).

use crate::portfolio::{heavy_tail_env, heavy_tail_scenario};
use crate::table::{vsecs, Table};
use smp_core::{run_portfolio_rrt_on, RestartSchedule, RrtPortfolioConfig, Strategy};
use smp_runtime::{Backend, MachineModel, StealConfig, StealPolicyKind};

/// Trials per (schedule, strategy) cell.
const TRIALS: usize = 24;

/// Workers (and portfolio size) per run.
const WORKERS: usize = 4;

/// The `figures restarts` ablation table.
pub fn restarts(_suite: &mut crate::figures::Suite) -> Table {
    let env = heavy_tail_env();
    let base = heavy_tail_scenario(&env);
    let machine = MachineModel::hopper();
    let mut t = Table::new(
        format!("Ablation: restart schedules on the narrow-gap RRT query ({TRIALS} trials, {WORKERS} workers, Hopper DES)"),
        &[
            "schedule",
            "strategy",
            "p50_s",
            "p99_s",
            "p99_vs_single",
            "wasted_mops",
            "rounds",
        ],
    );
    let schedules: [(String, usize, RestartSchedule); 4] = [
        ("single".to_string(), 1, RestartSchedule::None),
        ("par-none".to_string(), WORKERS, RestartSchedule::None),
        (
            RestartSchedule::Fixed(2_000).label(),
            WORKERS,
            RestartSchedule::Fixed(2_000),
        ),
        (
            RestartSchedule::Luby(2_500).label(),
            WORKERS,
            RestartSchedule::Luby(2_500),
        ),
    ];
    let strategies = [
        Strategy::NoLb,
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::rand8())),
    ];
    let mut single_p99: Option<u64> = None;
    for (label, members, schedule) in &schedules {
        for strategy in strategies {
            let mut times = Vec::with_capacity(TRIALS);
            let mut wasted = 0u64;
            let mut rounds = 0u64;
            for trial in 0..TRIALS {
                let cfg = RrtPortfolioConfig {
                    members: *members,
                    schedule: *schedule,
                    max_rounds: 24,
                    base_iters: 20_000,
                    seed: 0x9E1D + trial as u64,
                    ..base.clone()
                };
                let out = run_portfolio_rrt_on(&cfg, &machine, WORKERS, strategy, Backend::Des)
                    .expect("DES portfolio run");
                times.push(out.total_time);
                wasted += out.ledger.wasted_vcost;
                rounds += out.ledger.rounds_run;
            }
            times.sort_unstable();
            let p50 = times[(TRIALS - 1) / 2];
            let p99 = times[((TRIALS - 1) as f64 * 0.99) as usize];
            if label == "single" && single_p99.is_none() {
                single_p99 = Some(p99);
            }
            let vs_single = single_p99
                .map(|s| format!("{:.2}x", s as f64 / p99.max(1) as f64))
                .unwrap_or_else(|| "-".to_string());
            t.push_row(vec![
                label.clone(),
                strategy.label(),
                vsecs(p50),
                vsecs(p99),
                vs_single,
                format!("{:.1}", wasted as f64 / TRIALS as f64 / 1e6),
                format!("{:.2}", rounds as f64 / TRIALS as f64),
            ]);
        }
    }
    t
}
