//! Design-choice ablations (DESIGN.md §6) — beyond the paper's figures.

use super::Suite;
use crate::table::{f4, vsecs, Table};
use smp_core::partition::{greedy_lpt, loads, naive_block, spatial_bisection};
use smp_core::weights::{normalize_to, probe_weights};
use smp_core::{
    build_prm_workload, run_parallel_prm, run_parallel_prm_with_weights, work_cost,
    ParallelPrmConfig, Strategy, WeightKind,
};
use smp_geom::envs;
use smp_runtime::{simulate, MachineModel, SimConfig, StealAmount, StealConfig, StealPolicyKind};

/// Steal-amount policy: half vs one vs fixed chunks.
pub fn steal_amount(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let machine = MachineModel::hopper();
    let mut t = Table::new(
        format!("Ablation: steal amount under Hybrid WS at {p} PEs (med-cube)"),
        &[
            "amount",
            "node_connection_s",
            "steal_attempts",
            "tasks_transferred",
        ],
    );
    for (label, amount) in [
        ("half", StealAmount::Half),
        ("one", StealAmount::One),
        ("fixed-4", StealAmount::Fixed(4)),
    ] {
        let workload = suite.hopper_medcube();
        let s = Strategy::WorkStealing(StealConfig {
            policy: StealPolicyKind::Hybrid(8),
            amount,
        });
        let run = run_parallel_prm(workload, &machine, p, &s).expect("sim failed");
        t.push_row(vec![
            label.to_string(),
            vsecs(run.phases.node_connection),
            run.construction.steal_attempts.to_string(),
            run.construction.tasks_transferred.to_string(),
        ]);
    }
    t
}

/// Victim-selection policy comparison including the X10-style lifeline
/// extension (related work §V): balanced-phase time and control traffic.
pub fn lifeline(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let machine = MachineModel::hopper();
    let mut t = Table::new(
        format!("Ablation: steal policies incl. lifeline at {p} PEs (med-cube)"),
        &["policy", "node_connection_s", "messages", "steal_misses"],
    );
    for policy in [
        StealPolicyKind::RandK(8),
        StealPolicyKind::Diffusive,
        StealPolicyKind::Hybrid(8),
        StealPolicyKind::Lifeline,
    ] {
        let workload = suite.hopper_medcube();
        let run = run_parallel_prm(
            workload,
            &machine,
            p,
            &Strategy::WorkStealing(StealConfig::new(policy)),
        )
        .expect("sim failed");
        t.push_row(vec![
            policy.label(),
            vsecs(run.phases.node_connection),
            run.construction.messages.to_string(),
            run.construction.steal_misses.to_string(),
        ]);
    }
    t
}

/// Weight-estimate quality: how many probe samples does repartitioning need
/// before it stops hurting? (§III-B: "a reasonable estimate for the amount
/// of effort ... is required".)
pub fn weight_quality(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let machine = MachineModel::hopper();
    let seed = suite.cfg.seed;
    let robot_radius = suite.cfg.robot_radius;
    let mut t = Table::new(
        format!("Ablation: repartitioning weight quality at {p} PEs (med-cube)"),
        &["weight", "node_connection_s", "cov_after"],
    );
    // exact baselines
    for kind in [WeightKind::SampleCount, WeightKind::Vfree] {
        let workload = suite.hopper_medcube();
        let run = run_parallel_prm(workload, &machine, p, &Strategy::Repartition(kind))
            .expect("sim failed");
        t.push_row(vec![
            kind.label(),
            vsecs(run.phases.node_connection),
            f4(run.cov_after()),
        ]);
    }
    // noisy probe weights
    let env = envs::med_cube();
    for m in [1usize, 4, 16, 64] {
        let workload = suite.hopper_medcube();
        let w = probe_weights(&env, &workload.grid, m, robot_radius, seed);
        let total: f64 = workload.sample_counts().iter().map(|&c| c as f64).sum();
        let w = normalize_to(&w, total);
        let run = run_parallel_prm_with_weights(
            workload,
            &machine,
            p,
            &Strategy::Repartition(WeightKind::Probe(m)),
            Some(&w),
        )
        .expect("sim failed");
        t.push_row(vec![
            format!("probe-{m}"),
            vsecs(run.phases.node_connection),
            f4(run.cov_after()),
        ]);
    }
    // no balancing reference
    let workload = suite.hopper_medcube();
    let run = run_parallel_prm(workload, &machine, p, &Strategy::NoLb).expect("sim failed");
    t.push_row(vec![
        "none".to_string(),
        vsecs(run.phases.node_connection),
        f4(run.cov_after()),
    ]);
    t
}

/// Second-generation balancing head-to-head (DESIGN.md §16): static
/// repartitioning — greedy LPT vs the rectangular recursive-bisection
/// partitioner — against diffusive stealing — plain vs the
/// convergence-aware adaptive-radius variant — with no balancing and
/// Hybrid WS as the bookends. One DES run per strategy on the shared
/// med-cube workload; writes `results/balance.csv`.
pub fn balance(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let machine = MachineModel::hopper();
    let mut t = Table::new(
        format!("Ablation: balancing strategies at {p} PEs (med-cube)"),
        &[
            "strategy",
            "node_connection_s",
            "cov_after",
            "tasks_transferred",
            "messages",
        ],
    );
    for strategy in [
        Strategy::NoLb,
        Strategy::Repartition(WeightKind::SampleCount),
        Strategy::RectPartition(WeightKind::SampleCount),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Diffusive)),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::DiffusiveAdaptive)),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Hybrid(8))),
    ] {
        let workload = suite.hopper_medcube();
        let run = run_parallel_prm(workload, &machine, p, &strategy).expect("sim failed");
        t.push_row(vec![
            strategy.label(),
            vsecs(run.phases.node_connection),
            f4(run.cov_after()),
            run.construction.tasks_transferred.to_string(),
            run.construction.messages.to_string(),
        ]);
    }
    t
}

/// Partitioner comparison: the paper's greedy LPT (ignores edge cuts) vs
/// geometry-preserving recursive coordinate bisection.
pub fn partitioner(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let machine = MachineModel::hopper();
    let workload = suite.hopper_medcube();
    let counts = workload.sample_counts();
    let w: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let con_costs: Vec<u64> = workload
        .regions
        .iter()
        .map(|r| work_cost(&r.con_work, &machine.ops))
        .collect();

    let centroids: Vec<_> = workload
        .grid
        .region_ids()
        .map(|r| workload.grid.centroid(r))
        .collect();
    let maps = [
        ("naive-block", naive_block(w.len(), p)),
        ("greedy-lpt", greedy_lpt(&w, p)),
        ("spatial-rcb", spatial_bisection(&centroids, &w, p)),
    ];

    let mut t = Table::new(
        format!("Ablation: partitioner quality at {p} PEs (med-cube)"),
        &["partitioner", "makespan_s", "load_cov", "edge_cut"],
    );
    for (label, map) in maps {
        let cfg = SimConfig {
            machine: machine.clone(),
            steal: None,
            seed: 1,
        };
        let rep = simulate(&con_costs, &map.items_per_pe(), &cfg).expect("sim failed");
        let l = loads(&map, &w);
        t.push_row(vec![
            label.to_string(),
            vsecs(rep.makespan),
            f4(smp_runtime::metrics::cov(&l)),
            map.edge_cut(workload.region_graph.edges()).to_string(),
        ]);
    }
    t
}

/// Work-quantum granularity: regions-per-PE sweep at fixed p ("the size of
/// the biggest quanta of work establishes a lower bound", §III).
pub fn granularity(suite: &mut Suite) -> Table {
    let p = 128.min(suite.cfg.fig7a_p);
    let machine = MachineModel::hopper();
    let env = envs::med_cube();
    let mut t = Table::new(
        format!("Ablation: region granularity at {p} PEs (med-cube)"),
        &[
            "regions",
            "regions_per_pe",
            "without_lb_s",
            "repartitioning_s",
            "improvement_x",
        ],
    );
    let scale = suite.cfg.opteron_regions.max(1024);
    for div in [16usize, 4, 1] {
        let regions = (scale / div).max(p);
        let pcfg = ParallelPrmConfig {
            regions_target: regions,
            overlap: 0.004,
            attempts_per_region: suite.cfg.attempts_per_region,
            k_neighbors: suite.cfg.k_neighbors,
            lp_resolution: suite.cfg.lp_resolution,
            robot_radius: suite.cfg.robot_radius,
            connect_max_pairs: 2,
            connect_stop_after: 1,
            seed: suite.cfg.seed,
            ..ParallelPrmConfig::new(&env)
        };
        let workload = build_prm_workload(&pcfg);
        let no_lb = run_parallel_prm(&workload, &machine, p, &Strategy::NoLb).expect("sim failed");
        let repart = run_parallel_prm(
            &workload,
            &machine,
            p,
            &Strategy::Repartition(WeightKind::SampleCount),
        )
        .expect("sim failed");
        t.push_row(vec![
            workload.num_regions().to_string(),
            (workload.num_regions() / p).to_string(),
            vsecs(no_lb.total_time),
            vsecs(repart.total_time),
            format!(
                "{:.2}",
                no_lb.total_time as f64 / repart.total_time.max(1) as f64
            ),
        ]);
    }
    t
}

/// The Figure-8 caption environments: axis-aligned walls vs 45°-rotated
/// walls. Rotated walls cut across every region boundary, so more regions
/// are partially blocked and the imbalance (and the benefit of balancing)
/// is larger — the presumed reason the paper's caption names them.
pub fn walls45(suite: &mut Suite) -> Table {
    let machine = MachineModel::opteron();
    let p = 64;
    let mut t = Table::new(
        format!("Study: walls vs walls-45 PRM at {p} PEs (Opteron)"),
        &[
            "environment",
            "strategy",
            "time_s",
            "improvement_x",
            "load_cov",
        ],
    );
    for (name, env) in [
        ("walls", envs::walls(3, 0.06, 0.18)),
        ("walls-45", envs::walls_45(3, 0.06, 0.18)),
    ] {
        let pcfg = ParallelPrmConfig {
            regions_target: suite.cfg.opteron_regions / 4,
            overlap: 0.004,
            attempts_per_region: suite.cfg.attempts_per_region,
            k_neighbors: suite.cfg.k_neighbors,
            lp_resolution: suite.cfg.lp_resolution,
            robot_radius: 0.04,
            connect_max_pairs: 1,
            connect_stop_after: 1,
            seed: suite.cfg.seed,
            ..ParallelPrmConfig::new(&env)
        };
        let workload = build_prm_workload(&pcfg);
        let base = run_parallel_prm(&workload, &machine, p, &Strategy::NoLb).expect("sim failed");
        for s in [
            Strategy::NoLb,
            Strategy::Repartition(WeightKind::SampleCount),
            Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Hybrid(8))),
        ] {
            let run = run_parallel_prm(&workload, &machine, p, &s).expect("sim failed");
            t.push_row(vec![
                name.to_string(),
                run.strategy_label.clone(),
                vsecs(run.total_time),
                format!(
                    "{:.2}",
                    base.total_time as f64 / run.total_time.max(1) as f64
                ),
                f4(run.construction.busy_cov()),
            ]);
        }
    }
    t
}

/// Adaptive subdivision extension: CoV of the naive block mapping over
/// adaptively-refined leaves vs a uniform grid with the same region count.
pub fn adaptive(suite: &mut Suite) -> Table {
    use smp_core::adaptive::{adaptive_subdivide, block_loads};
    let env = envs::med_cube();
    let mut t = Table::new(
        "Ablation: adaptive vs uniform subdivision (med-cube, naive mapping)",
        &[
            "target_regions",
            "adaptive_leaves",
            "p",
            "uniform_cov",
            "adaptive_cov",
        ],
    );
    let _ = &suite.cfg;
    for &(target, p) in &[(512usize, 16usize), (2048, 64), (8192, 128)] {
        let leaves = adaptive_subdivide(&env, target, 9);
        let a_cov = smp_runtime::metrics::cov(&block_loads(&leaves, p));
        let grid: smp_geom::GridSubdivision<3> =
            smp_geom::GridSubdivision::with_target_regions(*env.bounds(), leaves.len(), 0.0);
        let w = smp_core::weights::vfree_weights(&env, &grid);
        let map = naive_block(grid.num_regions(), p);
        let u_cov = smp_runtime::metrics::cov(&loads(&map, &w));
        t.push_row(vec![
            target.to_string(),
            leaves.len().to_string(),
            p.to_string(),
            f4(u_cov),
            f4(a_cov),
        ]);
    }
    t
}

/// Region-overlap sweep: connectivity (assembled roadmap components) vs
/// duplicated boundary work.
pub fn overlap(suite: &mut Suite) -> Table {
    let env = envs::med_cube();
    let mut t = Table::new(
        "Ablation: region overlap vs roadmap connectivity (med-cube)",
        &[
            "overlap",
            "vertices",
            "edges",
            "components",
            "total_work_cd",
        ],
    );
    let machine = MachineModel::hopper();
    let regions = (suite.cfg.opteron_regions / 8).max(512);
    for overlap in [0.0, 0.002, 0.006, 0.02] {
        let pcfg = ParallelPrmConfig {
            regions_target: regions,
            overlap,
            attempts_per_region: suite.cfg.attempts_per_region,
            k_neighbors: suite.cfg.k_neighbors,
            lp_resolution: suite.cfg.lp_resolution,
            robot_radius: suite.cfg.robot_radius,
            connect_max_pairs: 4,
            connect_stop_after: 2,
            seed: suite.cfg.seed,
            ..ParallelPrmConfig::new(&env)
        };
        let workload = build_prm_workload(&pcfg);
        let g = smp_core::assemble::assemble_prm_roadmap(&workload);
        let (_, ncomp) = smp_graph::search::connected_components(&g);
        let total_cd: u64 = workload
            .regions
            .iter()
            .map(|r| work_cost(&(r.gen_work + r.con_work), &machine.ops))
            .sum();
        t.push_row(vec![
            format!("{overlap:.3}"),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            ncomp.to_string(),
            total_cd.to_string(),
        ]);
    }
    t
}
