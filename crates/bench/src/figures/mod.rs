//! Figure drivers: one function per figure of the paper's evaluation.
//!
//! All drivers share lazily-built workloads through [`Suite`] (a workload is
//! strategy- and PE-count-independent, so each environment is measured
//! exactly once per harness invocation).

pub mod ablations;
pub mod fig4;
pub mod hopper;
pub mod opteron;
pub mod resilience;
pub mod restarts;
pub mod rrt;

use crate::config::HarnessConfig;
use crate::table::Table;
use smp_core::model::{ModelConfig, ModelInstance};
use smp_core::{
    build_prm_workload, build_prm_workload_on_grid, build_rrt_workload, ParallelPrmConfig,
    ParallelRrtConfig, PrmWorkload, RrtWorkload,
};
use smp_geom::{envs, GridSubdivision};

/// Lazily-built shared workloads for the whole harness run.
pub struct Suite {
    pub cfg: HarnessConfig,
    hopper_medcube: Option<PrmWorkload<3>>,
    opteron_medcube: Option<PrmWorkload<3>>,
    opteron_smallcube: Option<PrmWorkload<3>>,
    opteron_free: Option<PrmWorkload<3>>,
    rrt_mixed: Option<RrtWorkload<3>>,
    rrt_mixed30: Option<RrtWorkload<3>>,
    rrt_free: Option<RrtWorkload<3>>,
    model: Option<(ModelInstance, PrmWorkload<2>)>,
}

impl Suite {
    pub fn new(cfg: HarnessConfig) -> Self {
        Suite {
            cfg,
            hopper_medcube: None,
            opteron_medcube: None,
            opteron_smallcube: None,
            opteron_free: None,
            rrt_mixed: None,
            rrt_mixed30: None,
            rrt_free: None,
            model: None,
        }
    }

    fn prm_workload(
        cfg: &HarnessConfig,
        env: &smp_geom::Environment<3>,
        regions: usize,
    ) -> PrmWorkload<3> {
        let pcfg = ParallelPrmConfig {
            regions_target: regions,
            overlap: 0.004,
            attempts_per_region: cfg.attempts_per_region,
            k_neighbors: cfg.k_neighbors,
            lp_resolution: cfg.lp_resolution,
            robot_radius: cfg.robot_radius,
            connect_max_pairs: 1,
            connect_stop_after: 1,
            seed: cfg.seed,
            ..ParallelPrmConfig::new(env)
        };
        build_prm_workload(&pcfg)
    }

    /// Med-cube workload at Hopper scale (Figs. 5, 6, 7, 9).
    pub fn hopper_medcube(&mut self) -> &PrmWorkload<3> {
        if self.hopper_medcube.is_none() {
            let env = envs::med_cube();
            eprintln!(
                "[suite] building hopper med-cube workload ({} regions)...",
                self.cfg.hopper_regions
            );
            self.hopper_medcube =
                Some(Self::prm_workload(&self.cfg, &env, self.cfg.hopper_regions));
        }
        self.hopper_medcube.as_ref().unwrap()
    }

    /// Opteron-scale workloads (Fig. 8): `"med-cube"`, `"small-cube"`, `"free"`.
    pub fn opteron_env(&mut self, name: &str) -> &PrmWorkload<3> {
        let regions = self.cfg.opteron_regions;
        let cfg = self.cfg.clone();
        let slot = match name {
            "med-cube" => &mut self.opteron_medcube,
            "small-cube" => &mut self.opteron_smallcube,
            "free" => &mut self.opteron_free,
            other => panic!("unknown opteron env {other}"),
        };
        if slot.is_none() {
            let env = match name {
                "med-cube" => envs::med_cube(),
                "small-cube" => envs::small_cube(),
                _ => envs::free_env(),
            };
            eprintln!("[suite] building opteron {name} workload ({regions} regions)...");
            *slot = Some(Self::prm_workload(&cfg, &env, regions));
        }
        slot.as_ref().unwrap()
    }

    /// RRT workloads (Fig. 10): `"mixed"`, `"mixed-30"`, `"free"`.
    pub fn rrt_env(&mut self, name: &str) -> &RrtWorkload<3> {
        let cfg = self.cfg.clone();
        let slot = match name {
            "mixed" => &mut self.rrt_mixed,
            "mixed-30" => &mut self.rrt_mixed30,
            "free" => &mut self.rrt_free,
            other => panic!("unknown rrt env {other}"),
        };
        if slot.is_none() {
            let env = match name {
                "mixed" => envs::mixed(),
                "mixed-30" => envs::mixed_30(),
                _ => envs::free_env(),
            };
            eprintln!(
                "[suite] building rrt {name} workload ({} cones)...",
                cfg.rrt_regions
            );
            let rcfg = ParallelRrtConfig {
                num_regions: cfg.rrt_regions,
                nodes_per_region: cfg.nodes_per_region,
                max_iters: cfg.rrt_max_iters,
                stall_limit: cfg.rrt_stall_limit,
                radius: 0.75,
                overlap_factor: 2.5,
                step_size: 0.05,
                lp_resolution: 0.002,
                robot_radius: 0.0,
                krays: 4,
                seed: cfg.seed,
                ..ParallelRrtConfig::new(&env)
            };
            *slot = Some(build_rrt_workload(&rcfg));
        }
        slot.as_ref().unwrap()
    }

    /// Model instance plus the experimental PRM workload on the *same* grid
    /// (Fig. 4).
    pub fn model(&mut self) -> &(ModelInstance, PrmWorkload<2>) {
        if self.model.is_none() {
            let mcfg = ModelConfig {
                blocked_fraction: 0.25,
                columns: self.cfg.model_columns,
                rows: self.cfg.model_rows,
            };
            eprintln!(
                "[suite] building model workload ({}x{} regions)...",
                mcfg.columns, mcfg.rows
            );
            let instance = ModelInstance::new(&mcfg);
            let env = envs::model_env(mcfg.blocked_fraction);
            let pcfg = ParallelPrmConfig {
                regions_target: mcfg.columns * mcfg.rows,
                overlap: 0.0,
                attempts_per_region: self.cfg.attempts_per_region,
                k_neighbors: self.cfg.k_neighbors,
                lp_resolution: self.cfg.lp_resolution,
                robot_radius: 0.0,
                connect_max_pairs: 2,
                connect_stop_after: 1,
                seed: self.cfg.seed,
                ..ParallelPrmConfig::new(&env)
            };
            let grid = GridSubdivision::new(*env.bounds(), [mcfg.columns, mcfg.rows], 0.0);
            let workload = build_prm_workload_on_grid(&pcfg, grid);
            self.model = Some((instance, workload));
        }
        self.model.as_ref().unwrap()
    }
}

/// Every figure id the harness can regenerate.
pub const ALL_FIGURES: &[&str] = &[
    "fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "fig6", "fig7a", "fig7b", "fig8a", "fig8b",
    "fig8c", "fig9a", "fig9b", "fig10a", "fig10b", "fig10c",
];

/// Every ablation id.
pub const ALL_ABLATIONS: &[&str] = &[
    "ablation-steal-amount",
    "ablation-lifeline",
    "ablation-adaptive",
    "study-walls45",
    "ablation-weights",
    "ablation-partitioner",
    "balance",
    "ablation-granularity",
    "ablation-overlap",
    "resilience",
    "restarts",
];

/// Run one figure (or ablation) by id.
pub fn run(id: &str, suite: &mut Suite) -> Vec<Table> {
    match id {
        "fig4a" => vec![fig4::fig4a(suite)],
        "fig4b" => vec![fig4::fig4b(suite)],
        "fig5a" => vec![hopper::fig5a(suite)],
        "fig5b" => vec![hopper::fig5b(suite)],
        "fig5c" => vec![hopper::fig5c(suite)],
        "fig6" => vec![hopper::fig6(suite)],
        "fig7a" => vec![hopper::fig7a(suite)],
        "fig7b" => vec![hopper::fig7b(suite)],
        "fig8a" => vec![opteron::fig8(suite, "med-cube", "fig8a")],
        "fig8b" => vec![opteron::fig8(suite, "small-cube", "fig8b")],
        "fig8c" => vec![opteron::fig8(suite, "free", "fig8c")],
        "fig9a" => vec![hopper::fig9(suite, true)],
        "fig9b" => vec![hopper::fig9(suite, false)],
        "fig10a" => vec![rrt::fig10(suite, "mixed", "fig10a")],
        "fig10b" => vec![rrt::fig10(suite, "mixed-30", "fig10b")],
        "fig10c" => vec![rrt::fig10(suite, "free", "fig10c")],
        "ablation-steal-amount" => vec![ablations::steal_amount(suite)],
        "ablation-lifeline" => vec![ablations::lifeline(suite)],
        "ablation-adaptive" => vec![ablations::adaptive(suite)],
        "study-walls45" => vec![ablations::walls45(suite)],
        "ablation-weights" => vec![ablations::weight_quality(suite)],
        "ablation-partitioner" => vec![ablations::partitioner(suite)],
        "balance" => vec![ablations::balance(suite)],
        "ablation-granularity" => vec![ablations::granularity(suite)],
        "ablation-overlap" => vec![ablations::overlap(suite)],
        "resilience" => vec![
            resilience::straggler(suite),
            resilience::message_loss(suite),
            resilience::crash(suite),
        ],
        "restarts" => vec![restarts::restarts(suite)],
        other => panic!("unknown figure id: {other}"),
    }
}
