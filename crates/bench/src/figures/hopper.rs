//! Figures 5, 6, 7 and 9 — the med-cube PRM suite on the virtual Hopper.

use super::Suite;
use crate::table::{f4, vsecs, Table};
use smp_core::{run_parallel_prm, PrmRun, Strategy, WeightKind};
use smp_runtime::MachineModel;

fn hopper() -> MachineModel {
    MachineModel::hopper()
}

fn run_all(suite: &mut Suite, p: usize) -> Vec<PrmRun> {
    let machine = hopper();
    let strategies = Strategy::prm_set();
    let workload = suite.hopper_medcube();
    strategies
        .iter()
        .map(|s| run_parallel_prm(workload, &machine, p, s).expect("sim failed"))
        .collect()
}

/// Fig. 5(a): PRM execution time for the four strategies, strong scaling.
pub fn fig5a(suite: &mut Suite) -> Table {
    let ps = suite.cfg.fig5_ps.clone();
    let mut t = Table::new(
        "Fig 5(a): PRM execution time (s), med-cube on Hopper",
        &["p", "without_lb", "repartitioning", "hybrid_ws", "rand8_ws"],
    );
    for &p in &ps {
        let runs = run_all(suite, p);
        let mut row = vec![p.to_string()];
        row.extend(runs.iter().map(|r| vsecs(r.total_time)));
        t.push_row(row);
    }
    t
}

/// Fig. 5(b): CoV of roadmap-node load before/after repartitioning.
pub fn fig5b(suite: &mut Suite) -> Table {
    let ps = suite.cfg.fig5_ps.clone();
    let machine = hopper();
    let mut t = Table::new(
        "Fig 5(b): CoV of PRM roadmap-node load, med-cube on Hopper",
        &["p", "before_repartitioning", "after_repartitioning"],
    );
    for &p in &ps {
        let workload = suite.hopper_medcube();
        let run = run_parallel_prm(
            workload,
            &machine,
            p,
            &Strategy::Repartition(WeightKind::SampleCount),
        )
        .expect("sim failed");
        t.push_row(vec![
            p.to_string(),
            f4(run.cov_before()),
            f4(run.cov_after()),
        ]);
    }
    t
}

/// Fig. 5(c): per-PE roadmap-node load profile at a fixed core count.
pub fn fig5c(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p; // the paper uses a 192-core run
    let machine = hopper();
    let workload = suite.hopper_medcube();
    let no_lb = run_parallel_prm(workload, &machine, p, &Strategy::NoLb).expect("sim failed");
    let repart = run_parallel_prm(
        workload,
        &machine,
        p,
        &Strategy::Repartition(WeightKind::SampleCount),
    )
    .expect("sim failed");
    let total: u64 = no_lb.node_load_final.iter().sum();
    let ideal = total as f64 / p as f64;
    let mut t = Table::new(
        format!("Fig 5(c): load profile of PRM at {p} PEs, med-cube on Hopper"),
        &["pe", "without_lb", "repartitioning", "ideal"],
    );
    for pe in 0..p {
        t.push_row(vec![
            pe.to_string(),
            no_lb.node_load_final[pe].to_string(),
            repart.node_load_final[pe].to_string(),
            format!("{ideal:.1}"),
        ]);
    }
    t
}

/// Fig. 6: execution time at higher core counts (NoLB vs Repartitioning).
pub fn fig6(suite: &mut Suite) -> Table {
    let ps = suite.cfg.fig6_ps.clone();
    let machine = hopper();
    let mut t = Table::new(
        "Fig 6: PRM execution time (s) at scale, med-cube on Hopper",
        &["p", "without_lb", "repartitioning", "speedup_x"],
    );
    for &p in &ps {
        let workload = suite.hopper_medcube();
        let no_lb = run_parallel_prm(workload, &machine, p, &Strategy::NoLb).expect("sim failed");
        let repart = run_parallel_prm(
            workload,
            &machine,
            p,
            &Strategy::Repartition(WeightKind::SampleCount),
        )
        .expect("sim failed");
        t.push_row(vec![
            p.to_string(),
            vsecs(no_lb.total_time),
            vsecs(repart.total_time),
            format!(
                "{:.2}",
                no_lb.total_time as f64 / repart.total_time.max(1) as f64
            ),
        ]);
    }
    t
}

/// Fig. 7(a): phase breakdown at a fixed core count, per strategy.
pub fn fig7a(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let runs = run_all(suite, p);
    let mut t = Table::new(
        format!("Fig 7(a): PRM phase breakdown (s) at {p} PEs, med-cube on Hopper"),
        &[
            "strategy",
            "region_connection",
            "node_connection",
            "other",
            "node_conn_fraction",
        ],
    );
    for r in &runs {
        t.push_row(vec![
            r.strategy_label.clone(),
            vsecs(r.phases.region_connection),
            vsecs(r.phases.node_connection),
            vsecs(r.phases.other),
            f4(r.phases.node_connection_fraction()),
        ]);
    }
    t
}

/// Fig. 7(b): remote accesses in region connection, NoLB vs Repartitioning.
pub fn fig7b(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7b_p;
    let machine = hopper();
    let workload = suite.hopper_medcube();
    let no_lb = run_parallel_prm(workload, &machine, p, &Strategy::NoLb).expect("sim failed");
    let repart = run_parallel_prm(
        workload,
        &machine,
        p,
        &Strategy::Repartition(WeightKind::SampleCount),
    )
    .expect("sim failed");
    let mut t = Table::new(
        format!("Fig 7(b): remote accesses in region connection at {p} PEs"),
        &["method", "region_graph", "roadmap_graph", "edge_cut"],
    );
    for (label, run) in [("No LB", &no_lb), ("Repart", &repart)] {
        t.push_row(vec![
            label.to_string(),
            run.remote.region_graph_remote.to_string(),
            run.remote.roadmap_remote.to_string(),
            run.edge_cut.to_string(),
        ]);
    }
    t
}

/// Fig. 9: per-PE stolen vs locally-executed tasks under HYBRID stealing.
pub fn fig9(suite: &mut Suite, low_count: bool) -> Table {
    let p = if low_count {
        suite.cfg.fig9a_p
    } else {
        suite.cfg.fig9b_p
    };
    let machine = hopper();
    let workload = suite.hopper_medcube();
    let s = Strategy::WorkStealing(smp_runtime::StealConfig::new(
        smp_runtime::StealPolicyKind::Hybrid(8),
    ));
    let run = run_parallel_prm(workload, &machine, p, &s).expect("sim failed");
    let name = if low_count { "9(a)" } else { "9(b)" };
    let mut t = Table::new(
        format!("Fig {name}: tasks stolen vs executed locally at {p} PEs (Hybrid WS)"),
        &["pe", "stolen", "non_stolen"],
    );
    for pe in 0..p {
        let stolen = run.construction.per_pe_stolen_executed[pe];
        let total = run.construction.per_pe_executed[pe];
        t.push_row(vec![
            pe.to_string(),
            stolen.to_string(),
            (total - stolen).to_string(),
        ]);
    }
    t
}
