//! Figure 8 — PRM with all load-balancing strategies on the virtual
//! Opteron cluster, across three imbalance levels (med-cube ≈24 % blocked,
//! small-cube ≈6 %, free 0 %).
//!
//! Note: the paper's Figure 8 captions say "Walls"/"Walls-45" but the body
//! text (§IV-C.1) describes the same experiment on med-cube / small-cube /
//! free; we follow the body text (see DESIGN.md §2).

use super::Suite;
use crate::table::{vsecs, Table};
use smp_core::{run_parallel_prm, Strategy};
use smp_runtime::MachineModel;

pub fn fig8(suite: &mut Suite, env: &str, fig_id: &str) -> Table {
    let ps = suite.cfg.fig8_ps.clone();
    let machine = MachineModel::opteron();
    let strategies = Strategy::prm_set();
    let mut t = Table::new(
        format!("Fig {fig_id}: PRM execution time (s), {env} on Opteron"),
        &["p", "without_lb", "repartitioning", "hybrid_ws", "rand8_ws"],
    );
    for &p in &ps {
        let workload = suite.opteron_env(env);
        let mut row = vec![p.to_string()];
        for s in &strategies {
            let run = run_parallel_prm(workload, &machine, p, s).expect("sim failed");
            row.push(vsecs(run.total_time));
        }
        t.push_row(row);
    }
    t
}
