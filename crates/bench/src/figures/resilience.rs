//! Resilience ablation: how each load-balancing strategy degrades under
//! injected faults (DESIGN.md §8).
//!
//! Two sweeps on the Hopper med-cube workload, both against a fault-free
//! baseline of the *same* strategy so the reported degradation isolates the
//! fault response from the strategy's intrinsic balance quality:
//!
//! * straggler severity — PE 0 runs 1×/2×/4×/8× slow for the whole
//!   node-connection phase. Work stealing should shed the slow PE's queue;
//!   static mappings should degrade roughly linearly with the factor.
//! * message loss — steal-protocol control messages are dropped at
//!   0%/10%/30%. Only work stealing sends messages, so this isolates the
//!   timeout/backoff recovery path of each victim-selection policy.

use super::Suite;
use crate::table::{f4, vsecs, Table};
use smp_core::{run_parallel_prm, run_parallel_prm_faulted, Strategy, WeightKind};
use smp_runtime::{FaultPlan, MachineModel, StealConfig, StealPolicyKind};

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::NoLb,
        Strategy::Repartition(WeightKind::SampleCount),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Hybrid(8))),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Lifeline)),
    ]
}

/// Straggler-severity sweep: slowdown factor on PE 0 vs degradation ratio.
pub fn straggler(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let seed = suite.cfg.seed;
    let machine = MachineModel::hopper();
    let mut t = Table::new(
        format!("Resilience: PE-0 straggler severity at {p} PEs (med-cube)"),
        &[
            "factor",
            "strategy",
            "node_connection_s",
            "degradation",
            "tasks_transferred",
            "timeouts",
        ],
    );
    for strategy in strategies() {
        let workload = suite.hopper_medcube();
        let base = run_parallel_prm(workload, &machine, p, &strategy).expect("baseline sim failed");
        for factor in [1.0f64, 2.0, 4.0, 8.0] {
            let plan = FaultPlan::new(seed).with_straggler(0, 0, u64::MAX, factor);
            let workload = suite.hopper_medcube();
            let run = run_parallel_prm_faulted(workload, &machine, p, &strategy, None, Some(&plan))
                .expect("faulted sim failed");
            t.push_row(vec![
                format!("{factor}"),
                strategy.label(),
                vsecs(run.phases.node_connection),
                f4(run
                    .construction
                    .degradation_ratio(base.construction.makespan)),
                run.construction.tasks_transferred.to_string(),
                run.construction.resilience.timeouts_fired.to_string(),
            ]);
        }
    }
    t
}

/// Message-loss sweep: steal-protocol drop rate vs degradation ratio for
/// every victim-selection policy (the strategies that actually talk).
pub fn message_loss(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let seed = suite.cfg.seed;
    let machine = MachineModel::hopper();
    let mut t = Table::new(
        format!("Resilience: steal-message loss at {p} PEs (med-cube)"),
        &[
            "loss_rate",
            "policy",
            "node_connection_s",
            "degradation",
            "dropped",
            "retransmits",
            "timeouts",
            "backoff_rounds",
        ],
    );
    for policy in [
        StealPolicyKind::RandK(8),
        StealPolicyKind::Diffusive,
        StealPolicyKind::Hybrid(8),
        StealPolicyKind::Lifeline,
    ] {
        let strategy = Strategy::WorkStealing(StealConfig::new(policy));
        let workload = suite.hopper_medcube();
        let base = run_parallel_prm(workload, &machine, p, &strategy).expect("baseline sim failed");
        for loss in [0.0f64, 0.1, 0.3] {
            let plan = FaultPlan::new(seed).with_message_loss(loss);
            let workload = suite.hopper_medcube();
            let run = run_parallel_prm_faulted(workload, &machine, p, &strategy, None, Some(&plan))
                .expect("faulted sim failed");
            let r = &run.construction.resilience;
            t.push_row(vec![
                format!("{loss}"),
                policy.label(),
                vsecs(run.phases.node_connection),
                f4(run
                    .construction
                    .degradation_ratio(base.construction.makespan)),
                r.messages_dropped.to_string(),
                r.retransmissions.to_string(),
                r.timeouts_fired.to_string(),
                r.retries.to_string(),
            ]);
        }
    }
    t
}

/// Crash-recovery snapshot: one PE dies mid-phase; all tasks must still run
/// exactly once, via queue recovery (static) or grant re-routing (stealing).
pub fn crash(suite: &mut Suite) -> Table {
    let p = suite.cfg.fig7a_p;
    let seed = suite.cfg.seed;
    let machine = MachineModel::hopper();
    let mut t = Table::new(
        format!("Resilience: PE-1 crash at 25% of baseline makespan, {p} PEs (med-cube)"),
        &[
            "strategy",
            "node_connection_s",
            "degradation",
            "tasks_recovered",
            "tasks_reexecuted",
            "wasted_work_s",
        ],
    );
    for strategy in strategies() {
        let workload = suite.hopper_medcube();
        let base = run_parallel_prm(workload, &machine, p, &strategy).expect("baseline sim failed");
        let crash_at = base.construction.makespan / 4;
        let plan = FaultPlan::new(seed).with_crash(1, crash_at.max(1));
        let workload = suite.hopper_medcube();
        let run = run_parallel_prm_faulted(workload, &machine, p, &strategy, None, Some(&plan))
            .expect("faulted sim failed");
        let r = &run.construction.resilience;
        t.push_row(vec![
            strategy.label(),
            vsecs(run.phases.node_connection),
            f4(run
                .construction
                .degradation_ratio(base.construction.makespan)),
            r.tasks_recovered.to_string(),
            r.tasks_reexecuted.to_string(),
            vsecs(r.wasted_work),
        ]);
    }
    t
}
