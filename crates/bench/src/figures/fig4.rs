//! Figure 4 — experimental validation of the theoretical model (§IV-B).
//!
//! (a) Coefficient of variation: the model's predicted imbalance (per-PE
//! `V_free` under the naïve column mapping) and best-possible balance vs the
//! measured sample-count imbalance before and after repartitioning.
//!
//! (b) Percentage improvement: theoretical (reduction in the max-loaded
//! PE's free area), experimental (reduction in max sample count) and
//! runtime (reduction of the load-balanced phase's execution time).

use super::Suite;
use crate::table::{f4, pct, Table};
use smp_core::{run_parallel_prm, Strategy, WeightKind};
use smp_runtime::metrics::percent_improvement;
use smp_runtime::MachineModel;

pub fn fig4a(suite: &mut Suite) -> Table {
    let ps = suite.cfg.model_ps.clone();
    let machine = MachineModel::opteron();
    let mut t = Table::new(
        "Fig 4(a): CoV of model environment on Opteron",
        &[
            "p",
            "model_imbalance_vfree",
            "model_best_vfree",
            "experimental_imbalance_samples",
            "repartitioning_samples",
        ],
    );
    for &p in &ps {
        let (instance, workload) = suite.model();
        let row = instance.analyze_p(p);
        let no_lb = run_parallel_prm(workload, &machine, p, &Strategy::NoLb).expect("sim failed");
        let repart = run_parallel_prm(
            workload,
            &machine,
            p,
            &Strategy::Repartition(WeightKind::SampleCount),
        )
        .expect("sim failed");
        t.push_row(vec![
            p.to_string(),
            f4(row.cov_naive),
            f4(row.cov_best),
            f4(no_lb.cov_before()),
            f4(repart.cov_after()),
        ]);
    }
    t
}

pub fn fig4b(suite: &mut Suite) -> Table {
    let ps = suite.cfg.model_runtime_ps.clone();
    let machine = MachineModel::opteron();
    let mut t = Table::new(
        "Fig 4(b): theoretical vs experimental improvement on model environment",
        &[
            "p",
            "theoretical_pct",
            "experimental_samples_pct",
            "runtime_pct",
        ],
    );
    for &p in &ps {
        let (instance, workload) = suite.model();
        let row = instance.analyze_p(p);
        let no_lb = run_parallel_prm(workload, &machine, p, &Strategy::NoLb).expect("sim failed");
        let repart = run_parallel_prm(
            workload,
            &machine,
            p,
            &Strategy::Repartition(WeightKind::SampleCount),
        )
        .expect("sim failed");
        let max_before = no_lb.node_load_initial.iter().copied().max().unwrap_or(0) as f64;
        let max_after = repart.node_load_final.iter().copied().max().unwrap_or(0) as f64;
        let samples_pct = percent_improvement(max_before, max_after);
        let runtime_pct = percent_improvement(
            no_lb.phases.node_connection as f64,
            repart.phases.node_connection as f64,
        );
        t.push_row(vec![
            p.to_string(),
            pct(row.improvement_bound_pct),
            pct(samples_pct),
            pct(runtime_pct),
        ]);
    }
    t
}
