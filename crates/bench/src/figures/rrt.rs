//! Figure 10 — radial RRT with work-stealing strategies on the virtual
//! Opteron cluster, across clutter levels (mixed ≈60 % blocked, mixed-30
//! ≈30 %, free 0 %). Figure 10(b) additionally includes repartitioning with
//! the k-random-rays weight — the paper's negative result.

use super::Suite;
use crate::table::{vsecs, Table};
use smp_core::{run_parallel_rrt, Strategy, WeightKind};
use smp_runtime::MachineModel;

pub fn fig10(suite: &mut Suite, env: &str, fig_id: &str) -> Table {
    let ps = suite.cfg.fig10_ps.clone();
    let machine = MachineModel::opteron();
    let strategies = Strategy::rrt_set();
    let include_repart = env == "mixed-30"; // Fig. 10(b) only
    let mut headers = vec!["p", "without_lb", "hybrid_ws", "rand8_ws", "diff_ws"];
    if include_repart {
        headers.push("repartitioning_krays");
    }
    let mut t = Table::new(
        format!("Fig {fig_id}: radial RRT execution time (s), {env} on Opteron"),
        &headers,
    );
    for &p in &ps {
        let workload = suite.rrt_env(env);
        let mut row = vec![p.to_string()];
        for s in &strategies {
            let run = run_parallel_rrt(workload, &machine, p, s).expect("sim failed");
            row.push(vsecs(run.total_time));
        }
        if include_repart {
            let run = run_parallel_rrt(
                workload,
                &machine,
                p,
                &Strategy::Repartition(WeightKind::KRays(4)),
            )
            .expect("sim failed");
            row.push(vsecs(run.total_time));
        }
        t.push_row(row);
    }
    t
}
