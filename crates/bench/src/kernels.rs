//! Kernel benchmark harness (`probe bench`): before/after timings for the
//! PR-4 hot-path kernels, plus deterministic gate counters.
//!
//! Each benchmark runs the **pre-overhaul implementation** (kept inline
//! here, verbatim) and the optimized library kernel over the same inputs,
//! asserts the results are identical, and reports both wall times. Because
//! every kernel is bit-identical by construction, the interesting
//! regression signal is not the timings (machine-dependent) but the
//! **gate counters**: deterministic work tallies (candidate counts, step
//! counts, result checksums) that must never drift between runs, modes, or
//! machines. `check()` compares those against a committed
//! `BENCH_kernels.json` and fails on any mismatch — that is what CI runs.
//!
//! `--quick` keeps every problem size identical (so the gates stay
//! comparable with a committed full run) and only reduces the number of
//! timing repetitions.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use smp_cspace::{
    BoxSampler, Cfg, EnvValidity, LocalPlanner, Sampler, StraightLinePlanner, ValidityChecker,
    WorkCounters,
};
use smp_geom::{envs, Point};
use smp_graph::{knn, IncrementalNn, KdTree, KnnScratch};
use smp_plan::rrt::{grow_rrt, RrtParams};
use std::collections::VecDeque;
use std::time::Instant;

/// One kernel's before/after measurement plus its deterministic gates.
#[derive(Debug, Clone)]
pub struct KernelReport {
    pub name: &'static str,
    pub baseline_ns: u64,
    pub optimized_ns: u64,
    /// Machine-independent work tallies; these must be identical across
    /// runs, `--quick` included. `(key, value)` pairs.
    pub gates: Vec<(&'static str, u64)>,
}

impl KernelReport {
    pub fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.optimized_ns.max(1) as f64
    }
}

/// Repetition counts: quick = 1 timing rep (sizes unchanged), full = best
/// of 3.
fn reps(quick: bool) -> usize {
    if quick {
        1
    } else {
        3
    }
}

/// Best-of-`reps` wall time of `f`, in nanoseconds. The closure's output is
/// folded into a checksum so the work cannot be optimized away.
fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as u64);
        out = Some(r);
    }
    (best, out.unwrap())
}

fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        })
        .collect()
}

fn fold(acc: u64, x: u64) -> u64 {
    (acc ^ x).wrapping_mul(0x100_0000_01b3) // FNV-style mix
}

// ---------------------------------------------------------------------------
// 1. RRT extension: interleaved insert + nearest (the O(n²) hot loop)
// ---------------------------------------------------------------------------

fn bench_rrt_extension(quick: bool) -> KernelReport {
    let n = 10_000; // acceptance floor: n >= 10k nodes
    let inserts = random_points(n, 11);
    let probes = random_points(n, 12);

    let brute = |points: &[Point<3>], inserts: &[Point<3>], probes: &[Point<3>]| {
        let mut pts: Vec<Point<3>> = points.to_vec();
        let mut acc = 0u64;
        for (q, probe) in inserts.iter().zip(probes) {
            pts.push(*q);
            let (idx, _) = knn::nearest(&pts, probe).unwrap();
            acc = fold(acc, idx as u64);
        }
        acc
    };
    let (baseline_ns, base_acc) = time_ns(reps(quick), || brute(&[], &inserts, &probes));

    let (optimized_ns, opt_acc) = time_ns(reps(quick), || {
        let mut nn: IncrementalNn<3> = IncrementalNn::with_capacity(n);
        let mut acc = 0u64;
        for (q, probe) in inserts.iter().zip(&probes) {
            nn.push(*q);
            let (idx, _) = nn.nearest(probe).unwrap();
            acc = fold(acc, idx as u64);
        }
        acc
    });
    assert_eq!(base_acc, opt_acc, "IncrementalNn diverged from brute force");

    KernelReport {
        name: "rrt_extension",
        baseline_ns,
        optimized_ns,
        gates: vec![("nodes", n as u64), ("nearest_checksum", opt_acc)],
    }
}

// ---------------------------------------------------------------------------
// 2. kd-tree build: full-sort median (old) vs select_nth partition (new)
// ---------------------------------------------------------------------------

/// The pre-PR-4 kd-tree build: median by full index sort per level,
/// O(n log² n) with two fresh buffers per recursion. Kept verbatim as the
/// timing baseline (layout equality with the new build is proven in
/// `crates/graph/tests/nn_index_differential.rs`).
fn reference_build(points: &[Point<3>]) -> (Vec<Point<3>>, Vec<u32>) {
    fn rec(pts: &mut [Point<3>], orig: &mut [u32], axis: usize, lo: usize, hi: usize) {
        if hi - lo <= 1 {
            return;
        }
        let mid = (lo + hi) / 2;
        let mut idx: Vec<usize> = (lo..hi).collect();
        idx.sort_by(|&a, &b| {
            pts[a][axis]
                .total_cmp(&pts[b][axis])
                .then(orig[a].cmp(&orig[b]))
        });
        let new_pts: Vec<Point<3>> = idx.iter().map(|&i| pts[i]).collect();
        let new_orig: Vec<u32> = idx.iter().map(|&i| orig[i]).collect();
        pts[lo..hi].copy_from_slice(&new_pts);
        orig[lo..hi].copy_from_slice(&new_orig);
        let next = (axis + 1) % 3;
        rec(pts, orig, next, lo, mid);
        rec(pts, orig, next, mid + 1, hi);
    }
    let mut pts = points.to_vec();
    let mut orig: Vec<u32> = (0..points.len() as u32).collect();
    if !pts.is_empty() {
        rec(&mut pts, &mut orig, 0, 0, points.len());
    }
    (pts, orig)
}

fn bench_kd_build(quick: bool) -> KernelReport {
    let n = 65_536;
    let points = random_points(n, 21);

    let (baseline_ns, ref_layout) = time_ns(reps(quick), || reference_build(&points));
    let (optimized_ns, tree) = time_ns(reps(quick), || KdTree::build(&points));

    let (tpts, torig) = tree.layout();
    assert_eq!(torig, &ref_layout.1[..], "kd build layout diverged");
    assert_eq!(tpts, &ref_layout.0[..]);
    let layout_hash = torig.iter().fold(0u64, |a, &i| fold(a, i as u64));

    KernelReport {
        name: "kd_build",
        baseline_ns,
        optimized_ns,
        gates: vec![("points", n as u64), ("layout_checksum", layout_hash)],
    }
}

// ---------------------------------------------------------------------------
// 3. kNN query: fresh allocations per query (old) vs reused scratch +
//    SoA leaf-span distance scans (new)
// ---------------------------------------------------------------------------

fn bench_knn_query(quick: bool) -> KernelReport {
    let n = 50_000;
    let nq = 20_000;
    let k = 8;
    let points = random_points(n, 31);
    let queries = random_points(nq, 32);
    let tree = KdTree::build(&points);

    let (baseline_ns, base) = time_ns(reps(quick), || {
        let mut examined = 0u64;
        let mut acc = 0u64;
        for q in &queries {
            // the pre-PR-4 shape: a fresh heap + result vector per query
            let nns = tree.k_nearest_counted(q, k, None, &mut examined);
            acc = fold(acc, nns[0].0 as u64);
        }
        (examined, acc)
    });

    let (optimized_ns, opt) = time_ns(reps(quick), || {
        let mut examined = 0u64;
        let mut acc = 0u64;
        let mut scratch = KnnScratch::new();
        let mut nns: Vec<(usize, f64)> = Vec::new();
        for q in &queries {
            tree.k_nearest_batched_into(q, k, None, &mut examined, &mut scratch, &mut nns);
            acc = fold(acc, nns[0].0 as u64);
        }
        (examined, acc)
    });
    // The batched kernel scans whole leaf spans through the SoA distance
    // kernel instead of descending to single points, so it *visits* more
    // candidates (`examined` differs by design) yet — being an exact
    // algorithm under the same (distance, index) total order — returns the
    // identical neighbour lists. The result checksum is the invariant.
    assert_eq!(base.1, opt.1, "batched kNN results diverged from recursive");

    KernelReport {
        name: "knn_query",
        baseline_ns,
        optimized_ns,
        gates: vec![
            ("queries", nq as u64),
            ("examined", opt.0),
            ("result_checksum", opt.1),
        ],
    }
}

// ---------------------------------------------------------------------------
// 4. Local planning: VecDeque bisection (old) vs van-der-Corput walk (new)
// ---------------------------------------------------------------------------

/// The pre-PR-4 queue-based bisection check, verbatim.
fn reference_lp_check(
    a: &Cfg<3>,
    b: &Cfg<3>,
    resolution: f64,
    validity: &impl ValidityChecker<3>,
    work: &mut WorkCounters,
) -> bool {
    work.lp_calls += 1;
    let dist = a.dist(b);
    let n = (dist / resolution).ceil() as u32;
    let mut queue = VecDeque::new();
    if n > 1 {
        queue.push_back((1u32, n - 1));
    }
    while let Some((lo, hi)) = queue.pop_front() {
        let mid = lo + (hi - lo) / 2;
        let q = a.lerp(b, mid as f64 / n as f64);
        work.lp_steps += 1;
        if !validity.is_valid(&q, work) {
            return false;
        }
        if mid > lo {
            queue.push_back((lo, mid - 1));
        }
        if mid < hi {
            queue.push_back((mid + 1, hi));
        }
    }
    true
}

fn bench_lp_check(quick: bool) -> KernelReport {
    // Roadmap-style workload: short neighbour edges in a cluttered
    // environment, where per-step collision cost is realistic. (On a
    // single-obstacle environment the iterative kernel's O(log n) index
    // decode per step is visible; against real collision checking it is
    // noise, and the win is the removed per-call VecDeque allocation.)
    let env = envs::mixed();
    // The baseline pays the pre-batch validity cost: the verbatim scalar
    // broad-phase loop (`is_valid_scalar`), checked one interpolated point
    // at a time — exactly what `EnvValidity` did before the SoA kernels.
    struct ScalarValidity<'a> {
        env: &'a smp_geom::Environment<3>,
        clearance: f64,
    }
    impl ValidityChecker<3> for ScalarValidity<'_> {
        fn is_valid(&self, q: &Cfg<3>, work: &mut WorkCounters) -> bool {
            work.cd_checks += 1;
            self.env.is_valid_scalar(q, self.clearance)
        }
    }
    let scalar_validity = ScalarValidity {
        env: &env,
        clearance: 0.01,
    };
    let validity = EnvValidity::new(&env, 0.01);
    let lp = StraightLinePlanner::new(0.002);
    let n_edges = 20_000;
    let a = random_points(n_edges, 41);
    let offsets = random_points(n_edges, 42);
    let b: Vec<Point<3>> = a
        .iter()
        .zip(&offsets)
        .map(|(p, o)| {
            // neighbour at ~0.1 distance, clamped into the unit cube
            let mut q = *p;
            for i in 0..3 {
                q[i] = (q[i] + (o[i] - 0.5) * 0.2).clamp(0.0, 1.0);
            }
            q
        })
        .collect();

    let (baseline_ns, base) = time_ns(reps(quick), || {
        let mut w = WorkCounters::new();
        let mut ok = 0u64;
        for (p, q) in a.iter().zip(&b) {
            if reference_lp_check(p, q, 0.002, &scalar_validity, &mut w) {
                ok += 1;
            }
        }
        (w.lp_steps, ok)
    });

    let (optimized_ns, opt) = time_ns(reps(quick), || {
        let mut w = WorkCounters::new();
        let mut ok = 0u64;
        for (p, q) in a.iter().zip(&b) {
            if lp.check(p, q, &validity, &mut w).valid {
                ok += 1;
            }
        }
        (w.lp_steps, ok)
    });
    assert_eq!(base, opt, "iterative local planner diverged from queue");

    KernelReport {
        name: "lp_check",
        baseline_ns,
        optimized_ns,
        gates: vec![
            ("edges", n_edges as u64),
            ("lp_steps", opt.0),
            ("edges_valid", opt.1),
        ],
    }
}

// ---------------------------------------------------------------------------
// 5. Collision broad-phase: all-obstacle scan (old) vs AABB culling (new)
// ---------------------------------------------------------------------------

fn bench_collision(quick: bool) -> KernelReport {
    let env = envs::mixed(); // ~60 % blocked clutter: many boxes
    let nq = 200_000;
    let queries = random_points(nq, 51);
    let clearance = 0.02;

    let (baseline_ns, base_valid) = time_ns(reps(quick), || {
        let mut valid = 0u64;
        for p in &queries {
            // the pre-PR-4 validity query: every obstacle, narrow phase
            let ok = env.bounds().contains(p)
                && env
                    .obstacles()
                    .iter()
                    .all(|o| !o.contains(p) && o.distance(p) >= clearance);
            valid += ok as u64;
        }
        valid
    });

    let (optimized_ns, opt_valid) = time_ns(reps(quick), || {
        let mut valid = 0u64;
        for p in &queries {
            valid += env.is_valid(p, clearance) as u64;
        }
        valid
    });
    assert_eq!(base_valid, opt_valid, "broad-phase diverged from full scan");

    KernelReport {
        name: "collision_broadphase",
        baseline_ns,
        optimized_ns,
        gates: vec![
            ("queries", nq as u64),
            ("obstacles", env.obstacles().len() as u64),
            ("valid", opt_valid),
        ],
    }
}

// ---------------------------------------------------------------------------
// 6. Point validity: scalar broad-phase loop (old) vs the SoA
//    four-obstacles-per-step batch kernel, both with early exit
// ---------------------------------------------------------------------------

fn bench_batch_validity(quick: bool) -> KernelReport {
    // Unlike `collision_broadphase` (whose baseline is the PR-4-era full
    // obstacle scan), this baseline is the *immediately* pre-batch kernel:
    // the inline volume-descending broad-phase loop, kept verbatim as
    // `Environment::is_valid_scalar`. The speedup isolates what the SoA
    // lanes buy on top of an already early-exiting scalar scan.
    let env = envs::mixed();
    let nq = 200_000;
    let queries = random_points(nq, 81);
    let clearance = 0.02;

    let (baseline_ns, base_valid) = time_ns(reps(quick), || {
        let mut valid = 0u64;
        for p in &queries {
            valid += env.is_valid_scalar(p, clearance) as u64;
        }
        valid
    });

    let (optimized_ns, opt_valid) = time_ns(reps(quick), || {
        let mut valid = 0u64;
        for p in &queries {
            valid += env.is_valid(p, clearance) as u64;
        }
        valid
    });
    assert_eq!(base_valid, opt_valid, "batch validity diverged from scalar");

    KernelReport {
        name: "batch_validity",
        baseline_ns,
        optimized_ns,
        gates: vec![
            ("queries", nq as u64),
            ("obstacles", env.obstacles().len() as u64),
            ("valid", opt_valid),
        ],
    }
}

// ---------------------------------------------------------------------------
// 7. End-to-end RRT growth: all old kernels (brute NN + queue LP + full
//    scan) vs the shipped pipeline, same RNG stream, identical tree
// ---------------------------------------------------------------------------

/// Pre-PR-4 `grow_rrt`, verbatim: brute-force nearest over a plain vector
/// and the queue-based local planner, with the identical RNG draw sequence,
/// so the resulting tree and work counters must equal the library's.
#[allow(clippy::too_many_arguments)]
fn grow_rrt_reference<S, V, R>(
    root: Cfg<3>,
    target: Option<Cfg<3>>,
    sampler: &S,
    validity: &V,
    lp_resolution: f64,
    params: &RrtParams,
    rng: &mut R,
) -> (usize, WorkCounters)
where
    S: Sampler<3>,
    V: ValidityChecker<3>,
    R: Rng + ?Sized,
{
    let mut work = WorkCounters::new();
    if !validity.is_valid(&root, &mut work) {
        return (0, work);
    }
    let mut nodes: Vec<Cfg<3>> = vec![root];
    work.vertices_added += 1;
    let mut iters = 0usize;
    let mut stalled = 0usize;
    while nodes.len() < params.num_nodes && iters < params.max_iters && stalled < params.stall_limit
    {
        iters += 1;
        stalled += 1;
        let q_rand = match target {
            Some(t) if rng.random_range(0.0..1.0) < params.target_bias => t,
            _ => sampler.sample(rng, &mut work),
        };
        work.knn_queries += 1;
        work.knn_candidates += nodes.len() as u64;
        let (near_idx, near_dist) = match knn::nearest(&nodes, &q_rand) {
            Some(x) => x,
            None => break,
        };
        if near_dist <= 1e-12 {
            continue;
        }
        let q_near = nodes[near_idx];
        let t = (params.step_size / near_dist).min(1.0);
        let q_new = q_near.lerp(&q_rand, t);
        if !validity.is_valid(&q_new, &mut work) {
            continue;
        }
        if !reference_lp_check(&q_near, &q_new, lp_resolution, validity, &mut work) {
            continue;
        }
        nodes.push(q_new);
        work.vertices_added += 1;
        work.edges_added += 1;
        stalled = 0;
    }
    (nodes.len(), work)
}

fn bench_end_to_end_rrt(quick: bool) -> KernelReport {
    let env = envs::mixed();
    let sampler = BoxSampler::new(*env.bounds());
    let lp_resolution = 0.004;
    let params = RrtParams {
        num_nodes: 10_000,
        step_size: 0.05,
        target_bias: 0.05,
        max_iters: 400_000,
        stall_limit: usize::MAX,
    };
    let root = Point::splat(0.5); // inside the clutter env's free core
    let target = Some(Point::new([0.95, 0.95, 0.95]));
    let seed = 61u64;

    // The baseline must also pay the pre-PR-4 collision cost: wrap the
    // obstacle scan in a ValidityChecker so lp/validity both use it.
    struct ScanValidity<'a> {
        env: &'a smp_geom::Environment<3>,
        clearance: f64,
    }
    impl ValidityChecker<3> for ScanValidity<'_> {
        fn is_valid(&self, q: &Cfg<3>, work: &mut WorkCounters) -> bool {
            work.cd_checks += 1;
            self.env.bounds().contains(q)
                && self
                    .env
                    .obstacles()
                    .iter()
                    .all(|o| !o.contains(q) && o.distance(q) >= self.clearance)
        }
    }
    let scan_validity = ScanValidity {
        env: &env,
        clearance: 0.0,
    };
    let validity = EnvValidity::new(&env, 0.0);

    let (baseline_ns, base) = time_ns(reps(quick), || {
        grow_rrt_reference(
            root,
            target,
            &sampler,
            &scan_validity,
            lp_resolution,
            &params,
            &mut StdRng::seed_from_u64(seed),
        )
    });

    let lp = StraightLinePlanner::new(lp_resolution);
    let (optimized_ns, opt) = time_ns(reps(quick), || {
        let r = grow_rrt(
            root,
            target,
            |_| true,
            &sampler,
            &validity,
            &lp,
            &params,
            &mut StdRng::seed_from_u64(seed),
        );
        (r.tree.num_vertices(), r.work)
    });
    assert_eq!(base.0, opt.0, "end-to-end tree size diverged");
    assert_eq!(base.1, opt.1, "end-to-end work counters diverged");

    KernelReport {
        name: "end_to_end_rrt",
        baseline_ns,
        optimized_ns,
        gates: vec![
            ("vertices", opt.0 as u64),
            ("knn_candidates", opt.1.knn_candidates),
            ("lp_steps", opt.1.lp_steps),
            ("cd_checks", opt.1.cd_checks),
        ],
    }
}

// ---------------------------------------------------------------------------
// Harness: run all, emit JSON, gate against a committed baseline
// ---------------------------------------------------------------------------

/// Run every kernel benchmark. `quick` shrinks timing repetitions only —
/// problem sizes (and therefore all gates) are identical in both modes.
pub fn run(quick: bool) -> Vec<KernelReport> {
    type Bench = fn(bool) -> KernelReport;
    let benches: [(&str, Bench); 7] = [
        ("rrt_extension", bench_rrt_extension),
        ("kd_build", bench_kd_build),
        ("knn_query", bench_knn_query),
        ("lp_check", bench_lp_check),
        ("collision_broadphase", bench_collision),
        ("batch_validity", bench_batch_validity),
        ("end_to_end_rrt", bench_end_to_end_rrt),
    ];
    let mut out = Vec::new();
    for (name, f) in benches {
        eprintln!("[bench] {name}...");
        let r = f(quick);
        eprintln!(
            "[bench] {name}: baseline {:.3}ms, optimized {:.3}ms ({:.2}x)",
            r.baseline_ns as f64 / 1e6,
            r.optimized_ns as f64 / 1e6,
            r.speedup()
        );
        out.push(r);
    }
    out
}

/// Deterministic gate lines, `kernel.key=value`, one per counter.
pub fn gate_lines(reports: &[KernelReport]) -> Vec<String> {
    reports
        .iter()
        .flat_map(|r| {
            r.gates
                .iter()
                .map(move |(k, v)| format!("{}.{}={}", r.name, k, v))
        })
        .collect()
}

/// Serialize reports as JSON (hand-rolled; the workspace carries no JSON
/// dependency). Timings are informative; the `gate` array is what CI
/// compares.
pub fn to_json(reports: &[KernelReport], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"smp-bench/kernels/v1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"baseline_ns\": {},\n", r.baseline_ns));
        s.push_str(&format!("      \"optimized_ns\": {},\n", r.optimized_ns));
        s.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup()));
        s.push_str("      \"counters\": {");
        for (j, (k, v)) in r.gates.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push_str("}\n");
        s.push_str(if i + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"gate\": [\n");
    let lines = gate_lines(reports);
    for (i, l) in lines.iter().enumerate() {
        s.push_str(&format!(
            "    \"{l}\"{}\n",
            if i + 1 < lines.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract the `gate` array from a committed benchmark JSON file.
pub fn parse_gate(json: &str) -> Vec<String> {
    let Some(start) = json.find("\"gate\"") else {
        return Vec::new();
    };
    let Some(open) = json[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = json[start + open..].find(']') else {
        return Vec::new();
    };
    json[start + open + 1..start + open + close]
        .split(',')
        .filter_map(|tok| {
            let t = tok.trim().trim_matches('"');
            if t.is_empty() {
                None
            } else {
                Some(t.to_string())
            }
        })
        .collect()
}

/// Compare this run's gates against a committed baseline file. Returns the
/// list of drift messages (empty = pass).
pub fn check_against(reports: &[KernelReport], committed_json: &str) -> Vec<String> {
    let committed = parse_gate(committed_json);
    let current = gate_lines(reports);
    let mut drift = Vec::new();
    if committed.is_empty() {
        drift.push("committed baseline has no gate array".to_string());
        return drift;
    }
    for line in &current {
        let key = line.split('=').next().unwrap();
        match committed.iter().find(|c| c.split('=').next() == Some(key)) {
            None => drift.push(format!("gate {key} missing from committed baseline")),
            Some(c) if c != line => {
                drift.push(format!("gate drift: committed `{c}` vs current `{line}`"))
            }
            Some(_) => {}
        }
    }
    for c in &committed {
        let key = c.split('=').next().unwrap();
        if !current.iter().any(|l| l.split('=').next() == Some(key)) {
            drift.push(format!("gate {key} present in baseline but not produced"));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<KernelReport> {
        vec![
            KernelReport {
                name: "a",
                baseline_ns: 200,
                optimized_ns: 100,
                gates: vec![("x", 1), ("y", 2)],
            },
            KernelReport {
                name: "b",
                baseline_ns: 10,
                optimized_ns: 10,
                gates: vec![("z", 3)],
            },
        ]
    }

    #[test]
    fn json_roundtrips_gate_lines() {
        let reports = sample_reports();
        let json = to_json(&reports, false);
        assert_eq!(parse_gate(&json), gate_lines(&reports));
        assert!(json.contains("\"speedup\": 2.000"));
    }

    #[test]
    fn check_detects_drift_and_passes_identity() {
        let reports = sample_reports();
        let json = to_json(&reports, true);
        assert!(check_against(&reports, &json).is_empty());

        let mut tampered = reports.clone();
        tampered[0].gates[1].1 = 99;
        let drift = check_against(&tampered, &json);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("a.y"), "{drift:?}");
    }

    #[test]
    fn check_flags_missing_gates() {
        let reports = sample_reports();
        let json = to_json(&reports[..1], false);
        let drift = check_against(&reports, &json);
        assert!(drift.iter().any(|d| d.contains("b.z")), "{drift:?}");
    }
}
