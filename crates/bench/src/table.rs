//! Result tables: aligned console printing + CSV output.

use std::io::Write;
use std::path::Path;

/// A labelled table of experiment results.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Write as CSV (comma-separated, quoted only when needed).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        writeln!(
            f,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        f.flush()
    }
}

/// Format a virtual-nanosecond duration as seconds with 3 decimals.
pub fn vsecs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

/// Format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float with 1 decimal (percentages).
pub fn pct(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["p", "time"]);
        t.push_row(vec!["8".into(), "1.5".into()]);
        t.push_row(vec!["128".into(), "0.25".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("  p"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrip_quoting() {
        let dir = std::env::temp_dir().join("smp_table_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["with,comma".into(), "plain".into()]);
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"with,comma\",plain"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(vsecs(1_500_000_000), "1.500");
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(pct(12.34), "12.3");
    }
}
