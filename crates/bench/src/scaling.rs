//! Wall-clock strong-scaling benchmark of the live and distributed
//! execution backends (`probe scaling`), emitting `BENCH_scaling.json`.
//!
//! For each environment × strategy × thread count, the full parallel PRM
//! runs **live** on real OS threads ([`smp_core::run_parallel_prm_live`])
//! and reports wall-clock phase times plus the merged-roadmap digest.
//! When the `smp-dist-worker` binary is present next to `probe`, the same
//! sweep additionally runs on the **dist** backend
//! ([`smp_core::run_parallel_prm_dist`]) — real coordinator/worker
//! *processes* over Unix sockets — at 1/2/4 workers, and every dist row
//! must reproduce the same reference digest the live rows do (the
//! three-way DES == live == dist gate, at benchmark scale).
//!
//! Two kinds of numbers come out, with very different contracts
//! (DESIGN.md §12):
//!
//! * **digests** are deterministic: every run of an environment must
//!   reproduce the reference digest of the measured (DES-build) workload,
//!   at any thread count and strategy. This is the committed regression
//!   gate (`--check` exits non-zero on drift).
//! * **wall times** are honest measurements of *this* host and are
//!   informative only. In particular, strong scaling requires real cores:
//!   [`ScalingReport::host_parallelism`] is recorded in the artifact, and the speedup
//!   expectation (≥1.5× at 4 threads) is only asserted when the host
//!   actually has ≥4 cores — a 1-CPU container interleaves the "parallel"
//!   runs and honestly reports speedup ≈ 1/threads.

use smp_core::{
    assemble_prm_roadmap, build_prm_workload, roadmap_digest, run_parallel_prm_dist,
    run_parallel_prm_live, ParallelPrmConfig, Strategy, WeightKind,
};
use smp_geom::{envs, Environment};
use smp_runtime::{DistTuning, LiveTuning, StealConfig, StealPolicyKind};

/// Thread counts of the strong-scaling sweep.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One run of one backend × environment × strategy × thread count.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// `"live"` (OS threads) or `"dist"` (worker processes).
    pub backend: &'static str,
    pub env: &'static str,
    pub strategy: String,
    /// Host threads (live) or worker processes (dist).
    pub threads: usize,
    /// End-to-end wall-clock time (all phases), milliseconds.
    pub wall_ms: f64,
    /// Node-connection phase (the balanced phase), milliseconds.
    pub node_ms: f64,
    /// Merged-roadmap digest of the workload this run produced.
    pub digest: u64,
    pub steal_hits: u64,
    pub tasks_transferred: u64,
}

/// The full sweep plus the per-environment reference digests.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_parallelism: usize,
    pub quick: bool,
    pub runs: Vec<ScalingRun>,
    /// Reference digest per environment, from the measured (DES-build)
    /// workload — what every live run must reproduce.
    pub reference: Vec<(&'static str, u64)>,
}

impl ScalingReport {
    /// Runs whose digest differs from their environment's reference —
    /// must be empty (the unconditional determinism gate).
    pub fn digest_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.runs {
            let want = self
                .reference
                .iter()
                .find(|(e, _)| *e == r.env)
                .map(|&(_, d)| d);
            if want != Some(r.digest) {
                out.push(format!(
                    "{} {} {} threads={}: digest {:#018x} != reference {:#018x}",
                    r.backend,
                    r.env,
                    r.strategy,
                    r.threads,
                    r.digest,
                    want.unwrap_or(0)
                ));
            }
        }
        out
    }

    /// Wall-clock speedup of `(backend, env, strategy)` at `threads`
    /// relative to its 1-thread run, if both were measured.
    pub fn speedup(&self, backend: &str, env: &str, strategy: &str, threads: usize) -> Option<f64> {
        let find = |t: usize| {
            self.runs.iter().find(|r| {
                r.backend == backend && r.env == env && r.strategy == strategy && r.threads == t
            })
        };
        Some(find(1)?.wall_ms / find(threads)?.wall_ms)
    }

    /// Live-backend strategies with a 4-thread speedup below `floor`.
    /// Only meaningful (and only asserted by `probe scaling`) on hosts
    /// with ≥4 cores. Dist rows are never speedup-gated: process spawn
    /// and socket overhead make their wall times informative only.
    pub fn speedup_violations(&self, floor: f64) -> Vec<String> {
        let mut out = Vec::new();
        for (env, _) in &self.reference {
            for r in self
                .runs
                .iter()
                .filter(|r| r.backend == "live" && r.env == *env && r.threads == 1)
            {
                if let Some(s) = self.speedup("live", env, &r.strategy, 4) {
                    if s < floor {
                        out.push(format!(
                            "{} {}: speedup(4) = {s:.2} < {floor}",
                            env, r.strategy
                        ));
                    }
                }
            }
        }
        out
    }
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::NoLb,
        Strategy::Repartition(WeightKind::SampleCount),
        Strategy::RectPartition(WeightKind::SampleCount),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::RandK(8))),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Diffusive)),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::DiffusiveAdaptive)),
        Strategy::WorkStealing(StealConfig::new(StealPolicyKind::Hybrid(8))),
    ]
}

fn sweep_env(
    name: &'static str,
    env: &Environment<3>,
    quick: bool,
    runs: &mut Vec<ScalingRun>,
    reference: &mut Vec<(&'static str, u64)>,
) {
    // The workload parameters are identical in quick and full mode so the
    // digests — and therefore the committed gate — are comparable; quick
    // only shrinks the sweep (fewer thread counts, one iteration).
    let cfg = ParallelPrmConfig {
        regions_target: 512,
        attempts_per_region: 10,
        k_neighbors: 5,
        lp_resolution: 0.012,
        robot_radius: 0.1,
        ..ParallelPrmConfig::new(env)
    };
    reference.push((
        name,
        roadmap_digest(&assemble_prm_roadmap(&build_prm_workload(&cfg))),
    ));
    let iters = if quick { 1 } else { 2 };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &THREADS };
    for strategy in strategies() {
        for &threads in thread_counts {
            // best-of-N to damp scheduler noise; the digest must be
            // identical every iteration anyway
            let mut best: Option<ScalingRun> = None;
            for _ in 0..iters {
                let (w, run) =
                    run_parallel_prm_live(&cfg, threads, &strategy, LiveTuning::default())
                        .expect("live run failed");
                let sample = ScalingRun {
                    backend: "live",
                    env: name,
                    strategy: run.strategy_label.clone(),
                    threads,
                    wall_ms: run.total_time as f64 / 1e6,
                    node_ms: run.phases.node_connection as f64 / 1e6,
                    digest: roadmap_digest(&assemble_prm_roadmap(&w)),
                    steal_hits: run.construction.steal_hits,
                    tasks_transferred: run.construction.tasks_transferred,
                };
                match &best {
                    Some(b) => {
                        assert_eq!(b.digest, sample.digest, "digest unstable across iterations");
                        if sample.wall_ms < b.wall_ms {
                            best = Some(sample);
                        }
                    }
                    None => best = Some(sample),
                }
            }
            runs.push(best.expect("at least one iteration"));
        }
    }
}

/// Worker-process counts of the dist sweep (8-process pools buy nothing
/// on typical benchmark hosts and double the spawn overhead).
pub const DIST_WORKERS: [usize; 3] = [1, 2, 4];

/// Sweep one environment on the dist backend: one iteration per
/// strategy × worker count (process-pool spawn overhead dominates; the
/// digest — the only gated number — is identical every iteration).
///
/// Returns `Err` with the spawn diagnostic if the `smp-dist-worker`
/// binary cannot be found, so the caller can skip the backend honestly
/// instead of crashing a live-only benchmark run.
fn sweep_env_dist(
    name: &'static str,
    env: &Environment<3>,
    quick: bool,
    runs: &mut Vec<ScalingRun>,
) -> Result<(), String> {
    let cfg = ParallelPrmConfig {
        regions_target: 512,
        attempts_per_region: 10,
        k_neighbors: 5,
        lp_resolution: 0.012,
        robot_radius: 0.1,
        ..ParallelPrmConfig::new(env)
    };
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &DIST_WORKERS };
    for strategy in strategies() {
        for &workers in worker_counts {
            let (w, run) = run_parallel_prm_dist(&cfg, workers, &strategy, DistTuning::default())
                .map_err(|e| e.to_string())?;
            runs.push(ScalingRun {
                backend: "dist",
                env: name,
                strategy: run.strategy_label.clone(),
                threads: workers,
                wall_ms: run.total_time as f64 / 1e6,
                node_ms: run.phases.node_connection as f64 / 1e6,
                digest: roadmap_digest(&assemble_prm_roadmap(&w)),
                steal_hits: run.construction.steal_hits,
                tasks_transferred: run.construction.tasks_transferred,
            });
        }
    }
    Ok(())
}

/// Run the strong-scaling sweep on `med-cube` and `free`.
///
/// Dist-backend rows are included when worker processes can be spawned
/// (the `smp-dist-worker` binary resolves); otherwise the sweep degrades
/// to live-only with a note on stderr — a missing binary must not turn a
/// benchmark host into a false digest failure.
pub fn run(quick: bool) -> ScalingReport {
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut runs = Vec::new();
    let mut reference = Vec::new();
    let med = envs::med_cube();
    sweep_env("med-cube", &med, quick, &mut runs, &mut reference);
    let free = envs::free_env();
    sweep_env("free", &free, quick, &mut runs, &mut reference);
    if let Err(e) = sweep_env_dist("med-cube", &med, quick, &mut runs)
        .and_then(|()| sweep_env_dist("free", &free, quick, &mut runs))
    {
        eprintln!("note: dist backend skipped ({e}); build smp-dist-worker to include it");
        runs.retain(|r| r.backend != "dist");
    }
    ScalingReport {
        host_parallelism,
        quick,
        runs,
        reference,
    }
}

/// Deterministic gate lines: one per environment's reference digest.
pub fn gate_lines(report: &ScalingReport) -> Vec<String> {
    report
        .reference
        .iter()
        .map(|(env, d)| format!("{env}={d:#018x}"))
        .collect()
}

/// Serialize the report as `BENCH_scaling.json` (hand-rolled, same idiom
/// as [`crate::kernels::to_json`]).
pub fn to_json(report: &ScalingReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"smp-bench/scaling/v1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if report.quick { "quick" } else { "full" }
    ));
    s.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        report.host_parallelism
    ));
    s.push_str("  \"runs\": [\n");
    for (i, r) in report.runs.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!(
            "\"backend\": \"{}\", \"env\": \"{}\", \"strategy\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \"node_ms\": {:.3}, \"digest\": \"{:#018x}\", \"steal_hits\": {}, \"tasks_transferred\": {}",
            r.backend, r.env, r.strategy, r.threads, r.wall_ms, r.node_ms, r.digest, r.steal_hits, r.tasks_transferred
        ));
        s.push_str(if i + 1 < report.runs.len() {
            "},\n"
        } else {
            "}\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"gate\": [\n");
    let lines = gate_lines(report);
    for (i, l) in lines.iter().enumerate() {
        s.push_str(&format!(
            "    \"{l}\"{}\n",
            if i + 1 < lines.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compare this run's reference digests against a committed
/// `BENCH_scaling.json`'s `gate` array. Wall times are *not* gated —
/// they are host-dependent by design; the digests must never drift.
pub fn check_against(report: &ScalingReport, committed_json: &str) -> Vec<String> {
    let committed = crate::kernels::parse_gate(committed_json);
    let current = gate_lines(report);
    let mut drift = Vec::new();
    if committed.is_empty() {
        drift.push("committed baseline has no gate array".to_string());
        return drift;
    }
    for line in &current {
        let key = line.split('=').next().unwrap();
        match committed.iter().find(|c| c.split('=').next() == Some(key)) {
            None => drift.push(format!("gate {key} missing from committed baseline")),
            Some(c) if c != line => {
                drift.push(format!("gate drift: committed `{c}` vs current `{line}`"))
            }
            Some(_) => {}
        }
    }
    for c in &committed {
        let key = c.split('=').next().unwrap();
        if !current.iter().any(|l| l.split('=').next() == Some(key)) {
            drift.push(format!("gate {key} present in baseline but not produced"));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ScalingReport {
        ScalingReport {
            host_parallelism: 1,
            quick: true,
            runs: vec![
                ScalingRun {
                    backend: "live",
                    env: "med-cube",
                    strategy: "nolb".into(),
                    threads: 1,
                    wall_ms: 10.0,
                    node_ms: 8.0,
                    digest: 0xABCD,
                    steal_hits: 0,
                    tasks_transferred: 0,
                },
                ScalingRun {
                    backend: "live",
                    env: "med-cube",
                    strategy: "nolb".into(),
                    threads: 4,
                    wall_ms: 5.0,
                    node_ms: 4.0,
                    digest: 0xABCD,
                    steal_hits: 0,
                    tasks_transferred: 0,
                },
            ],
            reference: vec![("med-cube", 0xABCD)],
        }
    }

    #[test]
    fn digest_gate_round_trips_and_catches_drift() {
        let report = tiny_report();
        assert!(report.digest_violations().is_empty());
        let json = to_json(&report);
        assert!(check_against(&report, &json).is_empty());
        let mut tampered = report.clone();
        tampered.reference[0].1 = 0xDEAD;
        assert!(!check_against(&tampered, &json).is_empty());
        let mut bad_run = report;
        bad_run.runs[1].digest = 0xDEAD;
        assert_eq!(bad_run.digest_violations().len(), 1);
    }

    #[test]
    fn speedup_is_relative_to_one_thread() {
        let report = tiny_report();
        assert_eq!(report.speedup("live", "med-cube", "nolb", 4), Some(2.0));
        assert!(report.speedup_violations(1.5).is_empty());
        assert_eq!(report.speedup_violations(3.0).len(), 1);
    }

    #[test]
    fn dist_rows_share_the_reference_digest_gate() {
        let mut report = tiny_report();
        report.runs.push(ScalingRun {
            backend: "dist",
            env: "med-cube",
            strategy: "nolb".into(),
            threads: 2,
            wall_ms: 20.0,
            node_ms: 15.0,
            digest: 0xABCD,
            steal_hits: 0,
            tasks_transferred: 0,
        });
        assert!(report.digest_violations().is_empty());
        // A drifting dist digest fails the same unconditional gate.
        report.runs.last_mut().unwrap().digest = 0xDEAD;
        let violations = report.digest_violations();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("dist "));
        // Dist rows never enter the speedup gate.
        report.runs.last_mut().unwrap().wall_ms = 1e9;
        assert!(report.speedup_violations(1.5).is_empty());
    }
}
