//! # smp-bench — benchmark harness and paper-figure regeneration
//!
//! Two halves:
//!
//! * the **figure harness** ([`figures`]): one driver per figure in the
//!   paper's evaluation (Figures 4–10), regenerating the same series the
//!   paper plots, as printed tables and CSV files under `results/`.
//!   Run via `cargo run --release -p smp-bench --bin figures -- <fig|all>`;
//! * **criterion micro-benchmarks** (`benches/`): substrate performance
//!   (kd-tree, DES throughput, partitioners, planners, thread pool) plus
//!   the design-choice ablations listed in DESIGN.md §6.
//!
//! A third piece, the **kernel benchmark harness** ([`kernels`], run as
//! `probe bench`), measures the PR-4 hot-path kernels against their
//! pre-overhaul implementations and emits `BENCH_kernels.json` with
//! deterministic regression gates (see DESIGN.md §11).
//!
//! A fourth, the **live strong-scaling harness** ([`scaling`], run as
//! `probe scaling`), runs the parallel PRM on the live shared-memory
//! backend at 1/2/4/8 host threads per strategy and emits
//! `BENCH_scaling.json`: wall-clock times (informative, host-dependent)
//! plus merged-roadmap digests (gated — DESIGN.md §12).
//!
//! A fifth, the **restart-portfolio tail benchmark** ([`portfolio`], run
//! as `probe portfolio`), sweeps Luby/fixed/no-restart portfolios over a
//! heavy-tailed narrow-passage scenario on the DES and emits
//! `BENCH_portfolio.json`: p50/p99/tail-mass of virtual solve time plus
//! per-configuration ledger digests (gated — DESIGN.md §14).
//!
//! A sixth, the **planning-as-a-service load benchmark** ([`serve`],
//! run as `probe serve`), drives a multi-tenant query workload through
//! `smp_serve::Server` at three offered-load levels, cold and
//! prewarmed, and emits `BENCH_serve.json`: p50/p99 request latency and
//! throughput per level plus per-level answer digests (gated —
//! DESIGN.md §15).

pub mod config;
pub mod figures;
pub mod kernels;
pub mod portfolio;
pub mod scaling;
pub mod serve;
pub mod table;

pub use config::HarnessConfig;
pub use table::Table;
