//! kd-tree vs brute-force k-nearest-neighbour search — the PRM connection
//! phase's inner primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smp_geom::Point;
use smp_graph::{knn, KdTree};
use std::hint::black_box;

fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        })
        .collect()
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    group.sample_size(20);
    for &n in &[100usize, 1_000, 10_000] {
        let pts = random_points(n, 7);
        let queries = random_points(64, 9);
        let tree = KdTree::build(&pts);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(tree.k_nearest(q, 6, None));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(knn::k_nearest(&pts, q, 6, None));
                }
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree_build");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let pts = random_points(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(KdTree::build(&pts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn, bench_build);
criterion_main!(benches);
