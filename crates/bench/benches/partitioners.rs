//! Partitioner cost: greedy LPT (the paper's partitioner) vs naive block vs
//! spatially-constrained recursive bisection, at region-graph scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smp_core::partition::{greedy_lpt, naive_block, spatial_bisection};
use smp_geom::Point;
use std::hint::black_box;

fn inputs(n: usize) -> (Vec<f64>, Vec<Point<3>>) {
    let mut rng = StdRng::seed_from_u64(5);
    let weights: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..10.0)).collect();
    let centroids: Vec<Point<3>> = (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        })
        .collect();
    (weights, centroids)
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    let p = 256;
    for &n in &[10_000usize, 100_000] {
        let (weights, centroids) = inputs(n);
        group.bench_with_input(BenchmarkId::new("block", n), &n, |b, _| {
            b.iter(|| black_box(naive_block(n, p)))
        });
        group.bench_with_input(BenchmarkId::new("lpt", n), &n, |b, _| {
            b.iter(|| black_box(greedy_lpt(&weights, p)))
        });
        group.bench_with_input(BenchmarkId::new("rcb", n), &n, |b, _| {
            b.iter(|| black_box(spatial_bisection(&centroids, &weights, p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
