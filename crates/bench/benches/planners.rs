//! Sequential planner cost: regional PRM construction and RRT growth, the
//! unit of work the parallel algorithms schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_cspace::{BoxSampler, ConeSampler, EnvValidity, StraightLinePlanner};
use smp_geom::{envs, Point, RadialSubdivision};
use smp_plan::{build_prm, grow_rrt, PrmParams, RrtParams};
use std::hint::black_box;

fn bench_prm(c: &mut Criterion) {
    let env = envs::med_cube();
    let sampler = BoxSampler::new(*env.bounds());
    let validity = EnvValidity::new(&env, 0.05);
    let lp = StraightLinePlanner::new(0.01);
    let mut group = c.benchmark_group("sequential_prm");
    group.sample_size(10);
    for &n in &[50usize, 200, 800] {
        let params = PrmParams {
            num_samples: n,
            k_neighbors: 6,
            max_attempt_factor: 10,
            skip_same_cc: false,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                black_box(build_prm(&sampler, &validity, &lp, &params, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_rrt(c: &mut Criterion) {
    let env = envs::mixed();
    let sub: RadialSubdivision<3> = RadialSubdivision::sample(Point::splat(0.5), 0.7, 64, 2.0, 9);
    let validity = EnvValidity::new(&env, 0.0);
    let lp = StraightLinePlanner::new(0.01);
    let mut group = c.benchmark_group("sequential_rrt");
    group.sample_size(10);
    for &n in &[25usize, 100] {
        let params = RrtParams {
            num_nodes: n,
            step_size: 0.05,
            target_bias: 0.1,
            max_iters: n * 40,
            stall_limit: 200,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let sampler = ConeSampler::new(&sub, 0);
                let mut rng = StdRng::seed_from_u64(4);
                black_box(grow_rrt(
                    sub.root(),
                    Some(sub.target(0)),
                    |q| sub.in_region(0, q),
                    &sampler,
                    &validity,
                    &lp,
                    &params,
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prm, bench_rrt);
criterion_main!(benches);
