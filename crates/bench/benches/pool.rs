//! Host work-stealing thread pool: speedup over sequential execution on a
//! deliberately imbalanced batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_runtime::WorkStealingPool;
use std::hint::black_box;

fn spin(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn bench_pool(c: &mut Criterion) {
    // imbalanced batch: a few heavy items among many light ones
    let items: Vec<u64> = (0..512)
        .map(|i| if i % 32 == 0 { 200_000 } else { 8_000 })
        .collect();
    let mut group = c.benchmark_group("host_pool");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &n in &items {
                total = total.wrapping_add(spin(n));
            }
            black_box(total)
        })
    });
    for &threads in &[2usize, 4, 8] {
        let pool = WorkStealingPool::new(threads);
        group.bench_with_input(BenchmarkId::new("pool", threads), &threads, |b, _| {
            b.iter(|| {
                let (out, _) = pool.run(&items, |_, &n| spin(n));
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
