//! Discrete-event simulator throughput: events processed per second for
//! static schedules and for each work-stealing policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_runtime::{simulate, MachineModel, SimConfig, StealConfig, StealPolicyKind};
use std::hint::black_box;

fn workload(n: usize) -> (Vec<u64>, Vec<Vec<u32>>) {
    // skewed costs: 1/4 of tasks are 8x heavier, all piled on one PE block
    let costs: Vec<u64> = (0..n)
        .map(|i| if i % 4 == 0 { 400_000 } else { 50_000 })
        .collect();
    let p = 64;
    let mut assignment = vec![Vec::new(); p];
    for t in 0..n {
        assignment[(t * p) / n].push(t as u32);
    }
    (costs, assignment)
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let (costs, assignment) = workload(n);
        let configs: Vec<(&str, Option<StealConfig>)> = vec![
            ("static", None),
            ("rand8", Some(StealConfig::new(StealPolicyKind::rand8()))),
            (
                "diffusive",
                Some(StealConfig::new(StealPolicyKind::Diffusive)),
            ),
            ("hybrid", Some(StealConfig::new(StealPolicyKind::Hybrid(8)))),
        ];
        for (name, steal) in configs {
            let cfg = SimConfig {
                machine: MachineModel::hopper(),
                steal,
                seed: 11,
            };
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(simulate(&costs, &assignment, &cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
