//! Geometry primitives: validity checks, ray casts, exact free-volume —
//! the cost model's unit operations.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smp_geom::{envs, Point, Ray};
use std::hint::black_box;

fn random_points(n: usize) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(13);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        })
        .collect()
}

fn bench_validity(c: &mut Criterion) {
    let pts = random_points(1024);
    let envs = [envs::med_cube(), envs::mixed(), envs::walls(3, 0.05, 0.2)];
    let mut group = c.benchmark_group("validity_1024pts");
    for env in &envs {
        group.bench_function(env.name(), |b| {
            b.iter(|| {
                let mut valid = 0usize;
                for p in &pts {
                    if env.is_valid(p, 0.05) {
                        valid += 1;
                    }
                }
                black_box(valid)
            })
        });
    }
    group.finish();
}

fn bench_ray_cast(c: &mut Criterion) {
    let env = envs::mixed();
    let dirs = random_points(256);
    c.bench_function("ray_cast_mixed_256", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in &dirs {
                let ray = Ray::new(Point::splat(0.5), *d - Point::splat(0.5));
                acc += env.ray_cast(&ray, 1.0);
            }
            black_box(acc)
        })
    });
}

fn bench_free_volume(c: &mut Criterion) {
    let env = envs::med_cube();
    let grid: smp_geom::GridSubdivision<3> =
        smp_geom::GridSubdivision::with_target_regions(*env.bounds(), 4096, 0.0);
    c.bench_function("vfree_4096_regions", |b| {
        b.iter(|| {
            let total: f64 = grid
                .region_ids()
                .map(|r| env.free_volume_in(&grid.core_cell(r)))
                .sum();
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_validity, bench_ray_cast, bench_free_volume);
criterion_main!(benches);
