//! Spatial hash grid for fixed-radius neighbour queries.
//!
//! For radius-connection PRM (sPRM) the query radius is known up front, and
//! a uniform bucket grid with cell size = radius answers `within_radius` by
//! scanning 3^D adjacent buckets — O(1) expected per query on uniform data,
//! beating the kd-tree's log factor and rebuild cost for this access
//! pattern. Complements [`crate::kdtree::KdTree`] (k-NN) and
//! [`crate::knn`] (exact brute force).

use smp_geom::{Aabb, Point};
use std::collections::HashMap;

/// A bucket grid over a bounded point set, sized for a fixed query radius.
#[derive(Debug, Clone)]
pub struct GridHash<const D: usize> {
    cell: f64,
    origin: Point<D>,
    buckets: HashMap<[i64; D], Vec<u32>>,
    points: Vec<Point<D>>,
}

impl<const D: usize> GridHash<D> {
    /// Build for queries of radius `radius` over `points` inside `bounds`.
    ///
    /// # Panics
    /// Panics when `radius` is not strictly positive.
    pub fn build(points: &[Point<D>], bounds: &Aabb<D>, radius: f64) -> Self {
        assert!(radius > 0.0, "grid hash needs a positive radius");
        let mut g = GridHash {
            cell: radius,
            origin: bounds.lo(),
            buckets: HashMap::new(),
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            g.buckets.entry(g.key(p)).or_default().push(i as u32);
        }
        g
    }

    fn key(&self, p: &Point<D>) -> [i64; D] {
        let mut k = [0i64; D];
        for i in 0..D {
            k[i] = ((p[i] - self.origin[i]) / self.cell).floor() as i64;
        }
        k
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points within `self`'s build radius of `query`, ascending by
    /// distance, as `(index, distance)`.
    pub fn within_radius(&self, query: &Point<D>) -> Vec<(usize, f64)> {
        let center = self.key(query);
        let mut out = Vec::new();
        // iterate the 3^D neighbourhood of the query's bucket
        let mut offs = [0i64; D];
        fn visit<const D: usize>(
            g: &GridHash<D>,
            center: &[i64; D],
            offs: &mut [i64; D],
            axis: usize,
            query: &Point<D>,
            out: &mut Vec<(usize, f64)>,
        ) {
            if axis == D {
                let mut key = *center;
                for i in 0..D {
                    key[i] += offs[i];
                }
                if let Some(bucket) = g.buckets.get(&key) {
                    for &i in bucket {
                        let d = g.points[i as usize].dist(query);
                        if d <= g.cell {
                            out.push((i as usize, d));
                        }
                    }
                }
                return;
            }
            for o in -1..=1 {
                offs[axis] = o;
                visit(g, center, offs, axis + 1, query, out);
            }
        }
        visit(self, &center, &mut offs, 0, query, &mut out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                ])
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = random_points(500, 3);
        let g = GridHash::build(&pts, &Aabb::unit(), 0.12);
        let queries = random_points(50, 9);
        for q in &queries {
            let fast: Vec<usize> = g.within_radius(q).into_iter().map(|(i, _)| i).collect();
            let slow: Vec<usize> = knn::within_radius(&pts, q, 0.12, None)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn query_outside_bounds_ok() {
        let pts = random_points(100, 5);
        let g = GridHash::build(&pts, &Aabb::unit(), 0.2);
        // queries outside the original bounds simply return nearby points
        let far = Point::new([2.0, 2.0, 2.0]);
        assert!(g.within_radius(&far).is_empty());
        let edge = Point::new([1.05, 0.5, 0.5]);
        let fast: Vec<usize> = g.within_radius(&edge).into_iter().map(|(i, _)| i).collect();
        let slow: Vec<usize> = knn::within_radius(&pts, &edge, 0.2, None)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn empty_set() {
        let g: GridHash<2> = GridHash::build(&[], &Aabb::unit(), 0.1);
        assert!(g.is_empty());
        assert!(g.within_radius(&Point::splat(0.5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive radius")]
    fn zero_radius_panics() {
        let _: GridHash<2> = GridHash::build(&[], &Aabb::unit(), 0.0);
    }
}
