//! The region graph of Algorithms 1 and 2.
//!
//! Vertices are regions (grid cells or radial cones); edges encode adjacency
//! and drive the region-connection phase. Region ids are dense `u32`s that
//! match the underlying subdivision's numbering.

use serde::{Deserialize, Serialize};
use smp_geom::{GridSubdivision, RadialSubdivision};

/// Region adjacency graph. Undirected; edges stored once as `(min, max)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionGraph {
    num_regions: usize,
    /// Sorted, deduplicated adjacency per region.
    adjacency: Vec<Vec<u32>>,
    /// Canonical edge list, each as `(a, b)` with `a < b`.
    edges: Vec<(u32, u32)>,
}

impl RegionGraph {
    /// Build from an explicit edge list (pairs may be unordered or
    /// duplicated; self-loops are dropped).
    pub fn from_edges(num_regions: usize, raw_edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut adjacency = vec![Vec::new(); num_regions];
        for &(a, b) in &edges {
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        RegionGraph {
            num_regions,
            adjacency,
            edges,
        }
    }

    /// Region graph of a uniform grid subdivision (face adjacency),
    /// Algorithm 1 lines 1–6.
    pub fn from_grid<const D: usize>(grid: &GridSubdivision<D>) -> Self {
        let n = grid.num_regions();
        let edges = grid
            .region_ids()
            .flat_map(|r| grid.neighbors(r).into_iter().map(move |n| (r, n)));
        Self::from_edges(n, edges)
    }

    /// Region graph of a radial subdivision: each region is connected to its
    /// `k` angularly-nearest regions, Algorithm 2 lines 3–9.
    pub fn from_radial<const D: usize>(sub: &RadialSubdivision<D>, k: usize) -> Self {
        let adj = sub.knn_adjacency(k);
        let edges = adj
            .iter()
            .enumerate()
            .flat_map(|(i, ns)| ns.iter().map(move |&n| (i as u32, n)));
        Self::from_edges(sub.num_regions(), edges)
    }

    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sorted neighbours of region `r`.
    pub fn neighbors(&self, r: u32) -> &[u32] {
        &self.adjacency[r as usize]
    }

    /// Canonical `(a, b)` edge list with `a < b`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    pub fn degree(&self, r: u32) -> usize {
        self.adjacency[r as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_geom::{sphere, Aabb, Point};

    #[test]
    fn from_edges_dedups_and_orients() {
        let g = RegionGraph::from_edges(3, vec![(1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn grid_region_graph_edge_count() {
        // 3x3 grid: 2*3 horizontal + 3*2 vertical = 12 edges
        let grid: GridSubdivision<2> = GridSubdivision::new(Aabb::unit(), [3, 3], 0.0);
        let g = RegionGraph::from_grid(&grid);
        assert_eq!(g.num_regions(), 9);
        assert_eq!(g.num_edges(), 12);
        // center has degree 4
        assert_eq!(g.degree(4), 4);
    }

    #[test]
    fn radial_region_graph() {
        let dirs = sphere::evenly_spaced_2d(8);
        let sub = RadialSubdivision::from_directions(Point::<2>::zero(), 1.0, dirs, 1.0);
        let g = RegionGraph::from_radial(&sub, 2);
        assert_eq!(g.num_regions(), 8);
        // ring topology: exactly 8 undirected edges, everyone degree 2
        assert_eq!(g.num_edges(), 8);
        for r in 0..8 {
            assert_eq!(g.degree(r), 2);
        }
    }
}
