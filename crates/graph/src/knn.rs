//! Brute-force k-nearest-neighbour search.
//!
//! Exact reference implementation used (a) directly by small regional
//! planners, and (b) as the oracle against which the kd-tree is
//! property-tested. Distances are Euclidean, evaluated through the SoA
//! batch kernel ([`smp_geom::batch::dists_into`]) four points per step;
//! each distance is bit-identical to `Point::dist`, and the `(distance,
//! index)` selection is a strict total order, so results match the
//! point-at-a-time scan exactly.

use smp_geom::batch;
use smp_geom::Point;

/// Indices and distances of the `k` nearest points to `query` among
/// `points`, sorted by ascending distance (ties broken by index).
///
/// `query_idx` optionally excludes one index (self-neighbour exclusion for
/// roadmap connection).
pub fn k_nearest<const D: usize>(
    points: &[Point<D>],
    query: &Point<D>,
    k: usize,
    exclude: Option<usize>,
) -> Vec<(usize, f64)> {
    let mut dists = Vec::new();
    batch::dists_into(points, query, &mut dists);
    let mut all: Vec<(usize, f64)> = dists
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != exclude)
        .map(|(i, &d)| (i, d))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// All indices within `radius` of `query` (inclusive), ascending by distance.
pub fn within_radius<const D: usize>(
    points: &[Point<D>],
    query: &Point<D>,
    radius: f64,
    exclude: Option<usize>,
) -> Vec<(usize, f64)> {
    let mut dists = Vec::new();
    batch::dists_into(points, query, &mut dists);
    let mut out: Vec<(usize, f64)> = dists
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != exclude)
        .map(|(i, &d)| (i, d))
        .filter(|&(_, d)| d <= radius)
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    out
}

/// Index of the single nearest point (`None` for an empty set).
pub fn nearest<const D: usize>(points: &[Point<D>], query: &Point<D>) -> Option<(usize, f64)> {
    let mut dists = Vec::new();
    batch::dists_into(points, query, &mut dists);
    dists
        .iter()
        .enumerate()
        .map(|(i, &d)| (i, d))
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point<2>> {
        vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([0.0, 2.0]),
            Point::new([5.0, 5.0]),
        ]
    }

    #[test]
    fn k_nearest_sorted_ascending() {
        let p = pts();
        let nn = k_nearest(&p, &Point::new([0.1, 0.0]), 3, None);
        assert_eq!(
            nn.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(nn[0].1 <= nn[1].1 && nn[1].1 <= nn[2].1);
    }

    #[test]
    fn exclusion_skips_self() {
        let p = pts();
        let nn = k_nearest(&p, &p[0], 1, Some(0));
        assert_eq!(nn[0].0, 1);
    }

    #[test]
    fn k_larger_than_set() {
        let p = pts();
        let nn = k_nearest(&p, &Point::zero(), 10, None);
        assert_eq!(nn.len(), 4);
    }

    #[test]
    fn within_radius_filters() {
        let p = pts();
        let r = within_radius(&p, &Point::zero(), 2.0, None);
        assert_eq!(r.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn nearest_basic() {
        let p = pts();
        assert_eq!(nearest(&p, &Point::new([4.0, 4.0])).unwrap().0, 3);
        let empty: Vec<Point<2>> = vec![];
        assert!(nearest(&empty, &Point::zero()).is_none());
    }
}
