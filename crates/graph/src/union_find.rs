//! Disjoint-set union (union-find) with path compression and union by rank.
//!
//! Used for connected-component queries on roadmaps and cycle detection when
//! connecting regional RRT branches (Algorithm 2, lines 15–17).

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Add a new singleton element, returning its index.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.num_sets += 1;
        id
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // compress
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`. Returns false if already joined (i.e.
    /// adding the edge `(a, b)` would create a cycle).
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Size of each set, keyed by representative.
    pub fn set_sizes(&mut self) -> std::collections::BTreeMap<u32, usize> {
        let n = self.len();
        let mut out = std::collections::BTreeMap::new();
        for x in 0..n as u32 {
            *out.entry(self.find(x)).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.same_set(0, 1));
    }

    #[test]
    fn union_merges_and_detects_cycles() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 2));
        assert_eq!(uf.num_sets(), 1);
        // 0-3 already connected: would be a cycle
        assert!(!uf.union(0, 3));
    }

    #[test]
    fn push_extends() {
        let mut uf = UnionFind::new(1);
        let b = uf.push();
        assert_eq!(b, 1);
        assert_eq!(uf.num_sets(), 2);
        uf.union(0, b);
        assert!(uf.same_set(0, 1));
    }

    #[test]
    fn set_sizes_sum_to_len() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        let sizes = uf.set_sizes();
        assert_eq!(sizes.values().sum::<usize>(), 6);
        assert_eq!(sizes.len(), 3);
        assert!(sizes.values().any(|&s| s == 3));
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert!(uf.same_set(0, 99));
        assert_eq!(uf.num_sets(), 1);
    }
}
