//! Distributed-view accounting: ownership maps and remote-access counters.
//!
//! STAPL's pGraph distributes vertices across locations; touching a vertex
//! owned by another location is a *remote access* and dominates communication
//! cost. Figure 7(b) of the paper measures exactly this: remote accesses in
//! the region-connection phase, for both the region graph and the roadmap
//! graph, before and after repartitioning. This module provides the
//! ownership map and the counters; `smp-runtime` charges virtual latency per
//! remote access.

use serde::{Deserialize, Serialize};

/// Maps each item (region or vertex) to its owning processing element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnerMap {
    owner: Vec<u32>,
    num_pes: usize,
}

impl OwnerMap {
    /// Build from an explicit assignment.
    ///
    /// # Panics
    /// Panics if any owner id is `>= num_pes`.
    pub fn new(owner: Vec<u32>, num_pes: usize) -> Self {
        assert!(
            owner.iter().all(|&o| (o as usize) < num_pes),
            "owner id out of range"
        );
        OwnerMap { owner, num_pes }
    }

    /// Block distribution: items split into `num_pes` contiguous chunks
    /// (sizes differing by at most one).
    pub fn block(num_items: usize, num_pes: usize) -> Self {
        assert!(num_pes > 0);
        let base = num_items / num_pes;
        let extra = num_items % num_pes;
        let mut owner = Vec::with_capacity(num_items);
        for pe in 0..num_pes {
            let len = base + usize::from(pe < extra);
            owner.extend(std::iter::repeat_n(pe as u32, len));
        }
        OwnerMap { owner, num_pes }
    }

    pub fn len(&self) -> usize {
        self.owner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Owner of item `i`.
    pub fn owner_of(&self, i: u32) -> u32 {
        self.owner[i as usize]
    }

    /// Reassign item `i` to `pe` (ownership transfer — work stealing or
    /// migration).
    pub fn transfer(&mut self, i: u32, pe: u32) {
        assert!((pe as usize) < self.num_pes, "owner id out of range");
        self.owner[i as usize] = pe;
    }

    /// Items owned by each PE.
    pub fn items_per_pe(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_pes];
        for (i, &pe) in self.owner.iter().enumerate() {
            out[pe as usize].push(i as u32);
        }
        out
    }

    /// Count of items per PE.
    pub fn load_per_pe(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_pes];
        for &pe in &self.owner {
            out[pe as usize] += 1;
        }
        out
    }

    /// Raw owner slice.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Number of edges in `edges` whose endpoints live on different PEs —
    /// the *edge cut* induced by this assignment. Repartitioning trades a
    /// lower load imbalance for a higher edge cut (paper §IV-C.1, Fig. 7).
    pub fn edge_cut(&self, edges: &[(u32, u32)]) -> usize {
        edges
            .iter()
            .filter(|&&(a, b)| self.owner_of(a) != self.owner_of(b))
            .count()
    }

    /// Count how many items moved between two assignments (migration
    /// volume).
    pub fn migration_count(&self, other: &OwnerMap) -> usize {
        assert_eq!(self.len(), other.len());
        self.owner
            .iter()
            .zip(&other.owner)
            .filter(|(a, b)| a != b)
            .count()
    }
}

/// Remote-access counters for the distributed graphs, by graph kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteAccessCounter {
    /// Accesses to region-graph vertices owned elsewhere.
    pub region_graph_remote: u64,
    /// Accesses to roadmap/tree vertices owned elsewhere.
    pub roadmap_remote: u64,
    /// Local accesses (for ratio reporting).
    pub local: u64,
}

impl RemoteAccessCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an access to a region-graph entry owned by `owner`, made from
    /// `from` PE.
    pub fn touch_region(&mut self, from: u32, owner: u32) {
        if from == owner {
            self.local += 1;
        } else {
            self.region_graph_remote += 1;
        }
    }

    /// Record `count` accesses to roadmap vertices owned by `owner`, made
    /// from `from` PE.
    pub fn touch_roadmap(&mut self, from: u32, owner: u32, count: u64) {
        if from == owner {
            self.local += count;
        } else {
            self.roadmap_remote += count;
        }
    }

    /// Total remote accesses across both graphs.
    pub fn total_remote(&self) -> u64 {
        self.region_graph_remote + self.roadmap_remote
    }

    pub fn merge(&mut self, other: &RemoteAccessCounter) {
        self.region_graph_remote += other.region_graph_remote;
        self.roadmap_remote += other.roadmap_remote;
        self.local += other.local;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_distribution_is_even() {
        let m = OwnerMap::block(10, 3);
        assert_eq!(m.load_per_pe(), vec![4, 3, 3]);
        assert_eq!(m.owner_of(0), 0);
        assert_eq!(m.owner_of(9), 2);
    }

    #[test]
    fn transfer_changes_owner() {
        let mut m = OwnerMap::block(4, 2);
        assert_eq!(m.owner_of(3), 1);
        m.transfer(3, 0);
        assert_eq!(m.owner_of(3), 0);
        assert_eq!(m.load_per_pe(), vec![3, 1]);
    }

    #[test]
    fn edge_cut_counts_cross_pe_edges() {
        let m = OwnerMap::new(vec![0, 0, 1, 1], 2);
        let edges = vec![(0, 1), (1, 2), (2, 3), (0, 3)];
        assert_eq!(m.edge_cut(&edges), 2);
    }

    #[test]
    fn migration_count() {
        let a = OwnerMap::block(6, 2);
        let mut b = a.clone();
        b.transfer(0, 1);
        b.transfer(5, 0);
        assert_eq!(a.migration_count(&b), 2);
    }

    #[test]
    fn items_per_pe_partitions() {
        let m = OwnerMap::new(vec![1, 0, 1, 0, 1], 2);
        let per = m.items_per_pe();
        assert_eq!(per[0], vec![1, 3]);
        assert_eq!(per[1], vec![0, 2, 4]);
    }

    #[test]
    fn remote_counters() {
        let mut c = RemoteAccessCounter::new();
        c.touch_region(0, 0);
        c.touch_region(0, 1);
        c.touch_roadmap(2, 2, 5);
        c.touch_roadmap(2, 3, 7);
        assert_eq!(c.local, 6);
        assert_eq!(c.region_graph_remote, 1);
        assert_eq!(c.roadmap_remote, 7);
        assert_eq!(c.total_remote(), 8);
        let mut d = RemoteAccessCounter::new();
        d.merge(&c);
        assert_eq!(d, c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_owner_panics() {
        let _ = OwnerMap::new(vec![0, 2], 2);
    }
}
