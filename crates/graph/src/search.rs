//! Graph search: BFS, Dijkstra, A*.
//!
//! Used by query processing (PRM: "extract a path through the roadmap",
//! §II-B.1) and by connectivity analysis in tests and experiments.

use crate::graph::{Graph, VertexId};
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Vertices reachable from `start` (including `start`), in BFS order.
pub fn bfs_reachable<V, E>(g: &Graph<V, E>, start: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.num_vertices()];
    let mut order = Vec::new();
    let mut q = VecDeque::new();
    seen[start as usize] = true;
    q.push_back(start);
    while let Some(v) = q.pop_front() {
        order.push(v);
        for &(n, _) in g.neighbors(v) {
            if !seen[n as usize] {
                seen[n as usize] = true;
                q.push_back(n);
            }
        }
    }
    order
}

/// Connected components: a component id per vertex plus the component count.
pub fn connected_components<V, E>(g: &Graph<V, E>) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0;
    for s in 0..n as u32 {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        for v in bfs_reachable(g, s) {
            comp[v as usize] = count;
        }
        count += 1;
    }
    (comp, count as usize)
}

#[derive(PartialEq)]
struct QueueItem {
    cost: f64,
    v: VertexId,
}

impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap: reverse
        other.cost.total_cmp(&self.cost).then(other.v.cmp(&self.v))
    }
}

/// Shortest path by edge weight. Returns `(path, cost)` or `None` when
/// unreachable. `weight` extracts a non-negative weight from each edge
/// payload.
pub fn dijkstra<V, E>(
    g: &Graph<V, E>,
    start: VertexId,
    goal: VertexId,
    weight: impl Fn(&E) -> f64,
) -> Option<(Vec<VertexId>, f64)> {
    astar(g, start, goal, weight, |_| 0.0)
}

/// A* with a consistent heuristic `h(v)` (pass `|_| 0.0` for Dijkstra).
pub fn astar<V, E>(
    g: &Graph<V, E>,
    start: VertexId,
    goal: VertexId,
    weight: impl Fn(&E) -> f64,
    h: impl Fn(VertexId) -> f64,
) -> Option<(Vec<VertexId>, f64)> {
    let n = g.num_vertices();
    if start as usize >= n || goal as usize >= n {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<VertexId> = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[start as usize] = 0.0;
    heap.push(QueueItem {
        cost: h(start),
        v: start,
    });
    while let Some(QueueItem { cost, v }) = heap.pop() {
        if v == goal {
            break;
        }
        if cost - h(v) > dist[v as usize] + 1e-12 {
            continue; // stale entry
        }
        for &(u, e) in g.neighbors(v) {
            let w = weight(g.edge(e).2);
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = dist[v as usize] + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                prev[u as usize] = v;
                heap.push(QueueItem {
                    cost: nd + h(u),
                    v: u,
                });
            }
        }
    }
    if dist[goal as usize].is_infinite() {
        return None;
    }
    let mut path = vec![goal];
    let mut cur = goal;
    while cur != start {
        cur = prev[cur as usize];
        if cur == u32::MAX {
            // goal == start handled by loop condition; unreachable otherwise
            return None;
        }
        path.push(cur);
    }
    path.reverse();
    Some((path, dist[goal as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 - 1 - 2
    ///  \     /
    ///   3 --4      5 (isolated)
    fn sample() -> Graph<(), f64> {
        let mut g = Graph::new();
        for _ in 0..6 {
            g.add_vertex(());
        }
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 2, 1.0);
        g
    }

    #[test]
    fn bfs_covers_component() {
        let g = sample();
        let r = bfs_reachable(&g, 0);
        assert_eq!(r.len(), 5);
        assert!(!r.contains(&5));
    }

    #[test]
    fn components_counted() {
        let g = sample();
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[4]);
        assert_ne!(comp[0], comp[5]);
    }

    #[test]
    fn dijkstra_shortest() {
        let g = sample();
        let (path, cost) = dijkstra(&g, 0, 2, |w| *w).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn dijkstra_weighted_detour() {
        let mut g = sample();
        // make 0-1 expensive; best route now 0-3-4-2
        g.add_edge(0, 2, 10.0);
        let (path, cost) = dijkstra(&g, 0, 2, |w| *w).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&2));
    }

    #[test]
    fn unreachable_is_none() {
        let g = sample();
        assert!(dijkstra(&g, 0, 5, |w| *w).is_none());
    }

    #[test]
    fn start_equals_goal() {
        let g = sample();
        let (path, cost) = dijkstra(&g, 3, 3, |w| *w).unwrap();
        assert_eq!(path, vec![3]);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn astar_with_heuristic_agrees() {
        let g = sample();
        // admissible heuristic: 0 everywhere except goal-side hint
        let (p1, c1) = dijkstra(&g, 0, 4, |w| *w).unwrap();
        let (p2, c2) = astar(&g, 0, 4, |w| *w, |_| 0.5).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(p1.len(), p2.len());
    }
}
