//! Static kd-tree for exact k-nearest-neighbour queries.
//!
//! Built once over a point set (median splits), queried many times — the
//! access pattern of PRM's connection phase. Euclidean metric.

use smp_geom::Point;
use std::collections::BinaryHeap;

/// A balanced kd-tree over an immutable point set.
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    /// Points in tree order (in-place median partitioned).
    points: Vec<Point<D>>,
    /// Original index of each point in tree order.
    original: Vec<u32>,
}

/// Max-heap entry for bounded kNN (largest distance at the top).
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    idx: u32,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.idx.cmp(&other.idx))
    }
}

impl<const D: usize> KdTree<D> {
    /// Build from a point set. `O(n log² n)` (median by sort per level).
    pub fn build(points: &[Point<D>]) -> Self {
        let mut original: Vec<u32> = (0..points.len() as u32).collect();
        let mut pts: Vec<Point<D>> = points.to_vec();
        if !pts.is_empty() {
            Self::build_rec(&mut pts, &mut original, 0, 0, points.len());
        }
        KdTree {
            points: pts,
            original,
        }
    }

    fn build_rec(pts: &mut [Point<D>], orig: &mut [u32], axis: usize, lo: usize, hi: usize) {
        if hi - lo <= 1 {
            return;
        }
        let mid = (lo + hi) / 2;
        // median partition on `axis` via a simple index sort of the slice
        let mut idx: Vec<usize> = (lo..hi).collect();
        idx.sort_by(|&a, &b| {
            pts[a][axis]
                .total_cmp(&pts[b][axis])
                .then(orig[a].cmp(&orig[b]))
        });
        let mut new_pts: Vec<Point<D>> = Vec::with_capacity(hi - lo);
        let mut new_orig: Vec<u32> = Vec::with_capacity(hi - lo);
        for &i in &idx {
            new_pts.push(pts[i]);
            new_orig.push(orig[i]);
        }
        pts[lo..hi].copy_from_slice(&new_pts);
        orig[lo..hi].copy_from_slice(&new_orig);
        let next = (axis + 1) % D;
        Self::build_rec(pts, orig, next, lo, mid);
        Self::build_rec(pts, orig, next, mid + 1, hi);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest points to `query`, ascending by distance, as
    /// `(original index, distance)`. Optionally excludes one original index.
    /// Returns the number of candidate points examined via `examined`.
    pub fn k_nearest_counted(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        examined: &mut u64,
    ) -> Vec<(usize, f64)> {
        if self.points.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(
            query,
            k,
            exclude,
            0,
            0,
            self.points.len(),
            &mut heap,
            examined,
        );
        let mut out: Vec<(usize, f64)> =
            heap.into_iter().map(|h| (h.idx as usize, h.dist)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The `k` nearest points to `query` (see [`KdTree::k_nearest_counted`]).
    pub fn k_nearest(&self, query: &Point<D>, k: usize, exclude: Option<u32>) -> Vec<(usize, f64)> {
        let mut n = 0;
        self.k_nearest_counted(query, k, exclude, &mut n)
    }

    #[allow(clippy::too_many_arguments)]
    fn knn_rec(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        axis: usize,
        lo: usize,
        hi: usize,
        heap: &mut BinaryHeap<HeapItem>,
        examined: &mut u64,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = &self.points[mid];
        *examined += 1;
        if Some(self.original[mid]) != exclude {
            let d = p.dist(query);
            // Tie-stability: the heap orders by (distance, original index),
            // so the top is the worst member under the exact total order the
            // brute-force oracle uses and eviction keeps the two in lockstep.
            let cand = HeapItem {
                dist: d,
                idx: self.original[mid],
            };
            if heap.len() < k {
                heap.push(cand);
            } else if let Some(top) = heap.peek() {
                if cand.cmp(top) == std::cmp::Ordering::Less {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }
        let next = (axis + 1) % D;
        let diff = query[axis] - p[axis];
        let (first, second) = if diff <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.knn_rec(query, k, exclude, next, first.0, first.1, heap, examined);
        let worst = heap.peek().map_or(f64::INFINITY, |h| h.dist);
        if heap.len() < k || diff.abs() <= worst {
            self.knn_rec(query, k, exclude, next, second.0, second.1, heap, examined);
        }
    }

    /// All points within `radius` of `query`, ascending by distance.
    pub fn within_radius(&self, query: &Point<D>, radius: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.radius_rec(query, radius, 0, 0, self.points.len(), &mut out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    fn radius_rec(
        &self,
        query: &Point<D>,
        radius: f64,
        axis: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<(usize, f64)>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = &self.points[mid];
        let d = p.dist(query);
        if d <= radius {
            out.push((self.original[mid] as usize, d));
        }
        let next = (axis + 1) % D;
        let diff = query[axis] - p[axis];
        if diff <= radius {
            self.radius_rec(query, radius, next, lo, mid, out);
        }
        if -diff <= radius {
            self.radius_rec(query, radius, next, mid + 1, hi, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                ])
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = random_points(300, 17);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let q = Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ]);
            let fast = tree.k_nearest(&q, 7, None);
            let slow = knn::k_nearest(&pts, &q, 7, None);
            let fi: Vec<usize> = fast.iter().map(|&(i, _)| i).collect();
            let si: Vec<usize> = slow.iter().map(|&(i, _)| i).collect();
            assert_eq!(fi, si);
        }
    }

    #[test]
    fn exclusion() {
        let pts = random_points(50, 3);
        let tree = KdTree::build(&pts);
        let nn = tree.k_nearest(&pts[10], 1, Some(10));
        assert_ne!(nn[0].0, 10);
        let with_self = tree.k_nearest(&pts[10], 1, None);
        assert_eq!(with_self[0].0, 10);
        assert_eq!(with_self[0].1, 0.0);
    }

    #[test]
    fn empty_and_small() {
        let tree: KdTree<2> = KdTree::build(&[]);
        assert!(tree.k_nearest(&Point::zero(), 3, None).is_empty());
        let one = KdTree::build(&[Point::new([1.0, 1.0])]);
        let nn = one.k_nearest(&Point::zero(), 3, None);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    fn within_radius_matches_brute() {
        let pts = random_points(200, 5);
        let tree = KdTree::build(&pts);
        let q = Point::new([0.5, 0.5, 0.5]);
        let fast = tree.within_radius(&q, 0.3);
        let slow = knn::within_radius(&pts, &q, 0.3, None);
        assert_eq!(
            fast.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            slow.iter().map(|&(i, _)| i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn prunes_subtrees() {
        // with clustered data, far queries should examine < n candidates
        let pts = random_points(4096, 8);
        let tree = KdTree::build(&pts);
        let mut examined = 0u64;
        let _ = tree.k_nearest_counted(&Point::new([0.01, 0.01, 0.01]), 3, None, &mut examined);
        assert!(
            examined < 4096,
            "kd-tree examined every point ({examined}/4096)"
        );
    }
}
