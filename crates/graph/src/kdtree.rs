//! Static kd-tree for exact k-nearest-neighbour queries.
//!
//! Built once over a point set (median splits), queried many times — the
//! access pattern of PRM's connection phase. Euclidean metric.

use smp_geom::batch;
use smp_geom::Point;
use std::collections::BinaryHeap;

/// Subtree span at or below which [`KdTree::k_nearest_batched_into`] scans
/// the contiguous tree range with the SoA distance kernel instead of
/// descending further. 32 points ≈ five levels of recursion replaced by
/// eight four-lane distance evaluations over contiguous memory.
const SCAN_SPAN: usize = 32;

/// A balanced kd-tree over an immutable point set.
#[derive(Debug, Clone, Default)]
pub struct KdTree<const D: usize> {
    /// Points in tree order (in-place median partitioned).
    points: Vec<Point<D>>,
    /// Original index of each point in tree order.
    original: Vec<u32>,
}

/// Max-heap entry for bounded kNN (largest distance at the top).
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    idx: u32,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.idx.cmp(&other.idx))
    }
}

/// Reusable query state for [`KdTree::k_nearest_into`]. One scratch serves
/// any number of queries; after the first query at a given `k` no further
/// heap allocation occurs.
#[derive(Default)]
pub struct KnnScratch {
    heap: BinaryHeap<HeapItem>,
    /// Distance buffer for the batched leaf scans; reused across queries.
    dists: Vec<f64>,
}

impl KnnScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

impl<const D: usize> KdTree<D> {
    /// Build from a point set. `O(n log n)`: median partition per level via
    /// `select_nth_unstable_by` on one interleaved `(point, index)` buffer —
    /// the only allocation is that single buffer, no per-level scratch.
    ///
    /// The resulting layout is bit-identical to a full-sort median build:
    /// at every recursion range the element landing at `mid` is the unique
    /// median under the strict total order `(coordinate, original index)`,
    /// and the *sets* routed left/right are therefore identical no matter
    /// how each half is ordered before its own recursive partition.
    pub fn build(points: &[Point<D>]) -> Self {
        let mut items: Vec<(Point<D>, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect();
        if !items.is_empty() {
            Self::build_rec(&mut items, 0);
        }
        let mut pts = Vec::with_capacity(items.len());
        let mut original = Vec::with_capacity(items.len());
        for (p, i) in items {
            pts.push(p);
            original.push(i);
        }
        KdTree {
            points: pts,
            original,
        }
    }

    fn build_rec(items: &mut [(Point<D>, u32)], axis: usize) {
        let n = items.len();
        if n <= 1 {
            return;
        }
        let mid = n / 2;
        items.select_nth_unstable_by(mid, |a, b| {
            a.0[axis].total_cmp(&b.0[axis]).then(a.1.cmp(&b.1))
        });
        let next = (axis + 1) % D;
        let (lo, rest) = items.split_at_mut(mid);
        Self::build_rec(lo, next);
        Self::build_rec(&mut rest[1..], next);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Tree-order layout as `(points, original indices)`. Exposed so
    /// differential tests and the kernel benchmark can prove the median
    /// partition produces the exact layout of the reference full-sort build.
    pub fn layout(&self) -> (&[Point<D>], &[u32]) {
        (&self.points, &self.original)
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest points to `query`, ascending by distance, written
    /// into `out` as `(original index, distance)`. Optionally excludes one
    /// original index; the number of candidate points examined is added to
    /// `examined`.
    ///
    /// This is the zero-allocation query path: `scratch` and `out` are
    /// reused across calls (PRM issues one query per sample over the same
    /// tree), so after the first call at a given `k` the query performs no
    /// heap allocation. Results are identical to [`KdTree::k_nearest`].
    pub fn k_nearest_into(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        examined: &mut u64,
        scratch: &mut KnnScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        out.clear();
        if self.points.is_empty() || k == 0 {
            return;
        }
        scratch.heap.clear();
        let have = scratch.heap.capacity();
        scratch.heap.reserve((k + 1).saturating_sub(have));
        self.knn_rec(
            query,
            k,
            exclude,
            0,
            0,
            self.points.len(),
            &mut scratch.heap,
            examined,
        );
        out.reserve(scratch.heap.len());
        out.extend(scratch.heap.drain().map(|h| (h.idx as usize, h.dist)));
        // unstable sort: the (distance, index) key is a strict total order
        // (indices are unique), so the result is deterministic and identical
        // to a stable sort — and `sort_unstable_by` never allocates.
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }

    /// Batched-leaf variant of [`KdTree::k_nearest_into`]: identical prune
    /// rule and heap discipline, but subtrees of span ≤ `SCAN_SPAN` — which
    /// are contiguous in the median layout — are settled by the SoA distance
    /// kernel four points per step instead of five more recursion levels.
    ///
    /// **Results are identical** to [`KdTree::k_nearest_into`]: both
    /// algorithms are exact (the prune `heap.len() < k || diff.abs() <=
    /// worst` only skips subtrees that provably contain no improving
    /// candidate; the leaf scan examines a superset of what recursion
    /// would), each per-pair distance is bit-identical to `Point::dist`,
    /// and the k-NN set under the strict `(distance, index)` total order is
    /// unique — so any exact algorithm returns the same `(index, distance)`
    /// list. Only `examined` differs (the leaf scan counts every point in
    /// the span, where recursion may prune inside it), which is why the
    /// kernel benchmark re-records that counter while its result checksum
    /// stays pinned.
    pub fn k_nearest_batched_into(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        examined: &mut u64,
        scratch: &mut KnnScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        out.clear();
        if self.points.is_empty() || k == 0 {
            return;
        }
        scratch.heap.clear();
        let have = scratch.heap.capacity();
        scratch.heap.reserve((k + 1).saturating_sub(have));
        let (heap, dists) = (&mut scratch.heap, &mut scratch.dists);
        self.knn_batched_rec(
            query,
            k,
            exclude,
            0,
            0,
            self.points.len(),
            heap,
            examined,
            dists,
        );
        out.reserve(scratch.heap.len());
        out.extend(scratch.heap.drain().map(|h| (h.idx as usize, h.dist)));
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }

    /// Allocating convenience wrapper over [`KdTree::k_nearest_batched_into`].
    pub fn k_nearest_batched_counted(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        examined: &mut u64,
    ) -> Vec<(usize, f64)> {
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        self.k_nearest_batched_into(query, k, exclude, examined, &mut scratch, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn knn_batched_rec(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        axis: usize,
        lo: usize,
        hi: usize,
        heap: &mut BinaryHeap<HeapItem>,
        examined: &mut u64,
        dists: &mut Vec<f64>,
    ) {
        if lo >= hi {
            return;
        }
        if hi - lo <= SCAN_SPAN {
            let span = &self.points[lo..hi];
            batch::dists_into(span, query, dists);
            *examined += span.len() as u64;
            for (off, &d) in dists.iter().enumerate() {
                let idx = self.original[lo + off];
                if Some(idx) == exclude {
                    continue;
                }
                let cand = HeapItem { dist: d, idx };
                if heap.len() < k {
                    heap.push(cand);
                } else if let Some(top) = heap.peek() {
                    if cand.cmp(top) == std::cmp::Ordering::Less {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
            return;
        }
        let mid = (lo + hi) / 2;
        let p = &self.points[mid];
        *examined += 1;
        if Some(self.original[mid]) != exclude {
            let d = p.dist(query);
            let cand = HeapItem {
                dist: d,
                idx: self.original[mid],
            };
            if heap.len() < k {
                heap.push(cand);
            } else if let Some(top) = heap.peek() {
                if cand.cmp(top) == std::cmp::Ordering::Less {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }
        let next = (axis + 1) % D;
        let diff = query[axis] - p[axis];
        let (first, second) = if diff <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.knn_batched_rec(
            query, k, exclude, next, first.0, first.1, heap, examined, dists,
        );
        let worst = heap.peek().map_or(f64::INFINITY, |h| h.dist);
        if heap.len() < k || diff.abs() <= worst {
            self.knn_batched_rec(
                query, k, exclude, next, second.0, second.1, heap, examined, dists,
            );
        }
    }

    /// The `k` nearest points to `query`, ascending by distance, as
    /// `(original index, distance)`. Optionally excludes one original index.
    /// Returns the number of candidate points examined via `examined`.
    pub fn k_nearest_counted(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        examined: &mut u64,
    ) -> Vec<(usize, f64)> {
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        self.k_nearest_into(query, k, exclude, examined, &mut scratch, &mut out);
        out
    }

    /// The `k` nearest points to `query` (see [`KdTree::k_nearest_counted`]).
    pub fn k_nearest(&self, query: &Point<D>, k: usize, exclude: Option<u32>) -> Vec<(usize, f64)> {
        let mut n = 0;
        self.k_nearest_counted(query, k, exclude, &mut n)
    }

    /// The single nearest point to `query` as `(original index, distance)`,
    /// with the exact `(distance, index)` tie-break of
    /// [`crate::knn::nearest`]. Allocation-free.
    pub fn nearest(&self, query: &Point<D>) -> Option<(usize, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let mut best: (f64, u32) = (f64::INFINITY, u32::MAX);
        self.nearest_rec(query, 0, 0, self.points.len(), &mut best);
        Some((best.1 as usize, best.0))
    }

    fn nearest_rec(
        &self,
        query: &Point<D>,
        axis: usize,
        lo: usize,
        hi: usize,
        best: &mut (f64, u32),
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = &self.points[mid];
        let d = p.dist(query);
        let cand = (d, self.original[mid]);
        if cand.0.total_cmp(&best.0).then(cand.1.cmp(&best.1)) == std::cmp::Ordering::Less {
            *best = cand;
        }
        let next = (axis + 1) % D;
        let diff = query[axis] - p[axis];
        let (first, second) = if diff <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.nearest_rec(query, next, first.0, first.1, best);
        // `<=`: an equidistant point with a smaller original index may live
        // on the far side of the splitting plane, and the total order must
        // find it.
        if diff.abs() <= best.0 {
            self.nearest_rec(query, next, second.0, second.1, best);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn knn_rec(
        &self,
        query: &Point<D>,
        k: usize,
        exclude: Option<u32>,
        axis: usize,
        lo: usize,
        hi: usize,
        heap: &mut BinaryHeap<HeapItem>,
        examined: &mut u64,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = &self.points[mid];
        *examined += 1;
        if Some(self.original[mid]) != exclude {
            let d = p.dist(query);
            // Tie-stability: the heap orders by (distance, original index),
            // so the top is the worst member under the exact total order the
            // brute-force oracle uses and eviction keeps the two in lockstep.
            let cand = HeapItem {
                dist: d,
                idx: self.original[mid],
            };
            if heap.len() < k {
                heap.push(cand);
            } else if let Some(top) = heap.peek() {
                if cand.cmp(top) == std::cmp::Ordering::Less {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }
        let next = (axis + 1) % D;
        let diff = query[axis] - p[axis];
        let (first, second) = if diff <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.knn_rec(query, k, exclude, next, first.0, first.1, heap, examined);
        let worst = heap.peek().map_or(f64::INFINITY, |h| h.dist);
        if heap.len() < k || diff.abs() <= worst {
            self.knn_rec(query, k, exclude, next, second.0, second.1, heap, examined);
        }
    }

    /// All points within `radius` of `query`, ascending by distance.
    pub fn within_radius(&self, query: &Point<D>, radius: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.radius_rec(query, radius, 0, 0, self.points.len(), &mut out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    fn radius_rec(
        &self,
        query: &Point<D>,
        radius: f64,
        axis: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<(usize, f64)>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = &self.points[mid];
        let d = p.dist(query);
        if d <= radius {
            out.push((self.original[mid] as usize, d));
        }
        let next = (axis + 1) % D;
        let diff = query[axis] - p[axis];
        if diff <= radius {
            self.radius_rec(query, radius, next, lo, mid, out);
        }
        if -diff <= radius {
            self.radius_rec(query, radius, next, mid + 1, hi, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                ])
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = random_points(300, 17);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let q = Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ]);
            let fast = tree.k_nearest(&q, 7, None);
            let slow = knn::k_nearest(&pts, &q, 7, None);
            let fi: Vec<usize> = fast.iter().map(|&(i, _)| i).collect();
            let si: Vec<usize> = slow.iter().map(|&(i, _)| i).collect();
            assert_eq!(fi, si);
        }
    }

    #[test]
    fn exclusion() {
        let pts = random_points(50, 3);
        let tree = KdTree::build(&pts);
        let nn = tree.k_nearest(&pts[10], 1, Some(10));
        assert_ne!(nn[0].0, 10);
        let with_self = tree.k_nearest(&pts[10], 1, None);
        assert_eq!(with_self[0].0, 10);
        assert_eq!(with_self[0].1, 0.0);
    }

    #[test]
    fn empty_and_small() {
        let tree: KdTree<2> = KdTree::build(&[]);
        assert!(tree.k_nearest(&Point::zero(), 3, None).is_empty());
        let one = KdTree::build(&[Point::new([1.0, 1.0])]);
        let nn = one.k_nearest(&Point::zero(), 3, None);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    fn within_radius_matches_brute() {
        let pts = random_points(200, 5);
        let tree = KdTree::build(&pts);
        let q = Point::new([0.5, 0.5, 0.5]);
        let fast = tree.within_radius(&q, 0.3);
        let slow = knn::within_radius(&pts, &q, 0.3, None);
        assert_eq!(
            fast.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            slow.iter().map(|&(i, _)| i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(400, 23);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let q = Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ]);
            assert_eq!(tree.nearest(&q), knn::nearest(&pts, &q));
        }
        let empty: KdTree<3> = KdTree::build(&[]);
        assert_eq!(empty.nearest(&Point::zero()), None);
    }

    #[test]
    fn nearest_ties_break_to_lowest_index() {
        // duplicates everywhere: the answer must be the lowest index
        let p = Point::new([0.25, 0.75, 0.5]);
        let pts = vec![p; 33];
        let tree = KdTree::build(&pts);
        assert_eq!(tree.nearest(&p), Some((0, 0.0)));
        assert_eq!(tree.nearest(&Point::zero()).unwrap().0, 0);
    }

    #[test]
    fn k_nearest_into_reuses_buffers() {
        let pts = random_points(200, 31);
        let tree = KdTree::build(&pts);
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let q = Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ]);
            let mut n1 = 0;
            tree.k_nearest_into(&q, 6, Some(5), &mut n1, &mut scratch, &mut out);
            let mut n2 = 0;
            let fresh = tree.k_nearest_counted(&q, 6, Some(5), &mut n2);
            assert_eq!(out, fresh);
            assert_eq!(n1, n2);
        }
    }

    #[test]
    fn duplicates_in_build_keep_brute_force_order() {
        // duplicated coordinates exercise the (coord, index) tie-break in
        // the median partition
        let mut pts = random_points(64, 11);
        let dups: Vec<Point<3>> = pts.iter().take(32).copied().collect();
        pts.extend(dups);
        let tree = KdTree::build(&pts);
        for q in pts.iter().take(20) {
            let fast = tree.k_nearest(q, 9, None);
            let slow = knn::k_nearest(&pts, q, 9, None);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn batched_query_matches_recursive_results() {
        // exactness: the leaf-scan variant must return the identical
        // (index, distance) list — bit-for-bit — even though `examined`
        // may differ
        let pts = random_points(1500, 77);
        let tree = KdTree::build(&pts);
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..60 {
            let q = Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ]);
            let exclude = if trial % 3 == 0 {
                Some(trial as u32)
            } else {
                None
            };
            let k = 1 + trial % 12;
            let mut n1 = 0;
            tree.k_nearest_batched_into(&q, k, exclude, &mut n1, &mut scratch, &mut out);
            let mut n2 = 0;
            let reference = tree.k_nearest_counted(&q, k, exclude, &mut n2);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
        // small trees exercise the all-leaf path
        for n in [0usize, 1, 2, 31, 32, 33] {
            let pts = random_points(n, 5 + n as u64);
            let tree = KdTree::build(&pts);
            let q = Point::new([0.4, 0.5, 0.6]);
            let mut e = 0;
            assert_eq!(
                tree.k_nearest_batched_counted(&q, 4, None, &mut e),
                tree.k_nearest(&q, 4, None)
            );
        }
    }

    #[test]
    fn prunes_subtrees() {
        // with clustered data, far queries should examine < n candidates
        let pts = random_points(4096, 8);
        let tree = KdTree::build(&pts);
        let mut examined = 0u64;
        let _ = tree.k_nearest_counted(&Point::new([0.01, 0.01, 0.01]), 3, None, &mut examined);
        assert!(
            examined < 4096,
            "kd-tree examined every point ({examined}/4096)"
        );
    }
}
