//! # smp-graph — graph substrate
//!
//! The planning stack is "essentially a large-scale graph problem" (paper
//! §I). This crate provides:
//!
//! * [`Graph`] — a compact undirected adjacency-list graph with vertex and
//!   edge payloads (the roadmap / tree representation);
//! * [`UnionFind`] — connected-component tracking (cycle detection for RRT
//!   region connection, CC queries for PRM);
//! * [`KdTree`], the incremental [`IncrementalNn`], the fixed-radius
//!   [`GridHash`], and brute-force [`knn`] — nearest-neighbour search;
//! * [`search`] — BFS / Dijkstra / A* for query resolution;
//! * [`RegionGraph`] — the region adjacency graph of Algorithms 1 and 2;
//! * [`partitioned`] — ownership maps and remote-access accounting that
//!   emulate a distributed (STAPL pGraph-like) view of a graph.

pub mod graph;
pub mod gridhash;
pub mod kdtree;
pub mod knn;
pub mod nn_index;
pub mod partitioned;
pub mod region_graph;
pub mod search;
pub mod union_find;

pub use graph::{EdgeId, Graph, VertexId};
pub use gridhash::GridHash;
pub use kdtree::{KdTree, KnnScratch};
pub use nn_index::IncrementalNn;
pub use partitioned::{OwnerMap, RemoteAccessCounter};
pub use region_graph::RegionGraph;
pub use union_find::UnionFind;
