//! Compact undirected adjacency-list graph.
//!
//! Vertices and edges carry payloads (`V`, `E`). Indices are `u32` (the
//! perf-book "smaller integers" idiom); a roadmap with > 4 billion vertices
//! is out of scope.

use serde::{Deserialize, Serialize};

/// Vertex identifier (dense, 0-based).
pub type VertexId = u32;
/// Edge identifier (dense, 0-based).
pub type EdgeId = u32;

/// An undirected multigraph with vertex payloads `V` and edge payloads `E`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph<V, E> {
    vertices: Vec<V>,
    edges: Vec<(VertexId, VertexId, E)>,
    /// adjacency[v] = list of (neighbor, edge id)
    adjacency: Vec<Vec<(VertexId, EdgeId)>>,
}

impl<V, E> Default for Graph<V, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, E> Graph<V, E> {
    /// Empty graph.
    pub fn new() -> Self {
        Graph {
            vertices: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Empty graph with vertex capacity reserved.
    pub fn with_capacity(nv: usize, ne: usize) -> Self {
        Graph {
            vertices: Vec::with_capacity(nv),
            edges: Vec::with_capacity(ne),
            adjacency: Vec::with_capacity(nv),
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Add a vertex, returning its id.
    pub fn add_vertex(&mut self, payload: V) -> VertexId {
        let id = self.vertices.len() as VertexId;
        self.vertices.push(payload);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an undirected edge. Parallel edges and self-loops are permitted
    /// (callers that care use [`Graph::has_edge`] first).
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId, payload: E) -> EdgeId {
        assert!(
            (a as usize) < self.vertices.len(),
            "vertex {a} out of range"
        );
        assert!(
            (b as usize) < self.vertices.len(),
            "vertex {b} out of range"
        );
        let id = self.edges.len() as EdgeId;
        self.edges.push((a, b, payload));
        self.adjacency[a as usize].push((b, id));
        if a != b {
            self.adjacency[b as usize].push((a, id));
        }
        id
    }

    pub fn vertex(&self, v: VertexId) -> &V {
        &self.vertices[v as usize]
    }

    pub fn vertex_mut(&mut self, v: VertexId) -> &mut V {
        &mut self.vertices[v as usize]
    }

    /// Edge endpoints and payload.
    pub fn edge(&self, e: EdgeId) -> (VertexId, VertexId, &E) {
        let (a, b, ref p) = self.edges[e as usize];
        (a, b, p)
    }

    /// Neighbours of `v` as (neighbor, edge id) pairs.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adjacency[v as usize]
    }

    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v as usize].len()
    }

    /// True if an edge between `a` and `b` exists.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let (s, t) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adjacency[s as usize].iter().any(|&(n, _)| n == t)
    }

    /// Iterate vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        0..self.vertices.len() as VertexId
    }

    /// Iterate vertex payloads.
    pub fn vertices(&self) -> impl Iterator<Item = &V> {
        self.vertices.iter()
    }

    /// Iterate `(a, b, payload)` for every edge.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, &E)> {
        self.edges.iter().map(|(a, b, p)| (*a, *b, p))
    }

    /// Append `other` into `self`, returning the vertex-id offset applied to
    /// `other`'s ids. Used when migrating a regional roadmap into a global
    /// one.
    pub fn absorb(&mut self, other: Graph<V, E>) -> VertexId {
        let offset = self.vertices.len() as VertexId;
        self.vertices.extend(other.vertices);
        for _ in 0..(self.vertices.len() - self.adjacency.len()) {
            self.adjacency.push(Vec::new());
        }
        for (a, b, p) in other.edges {
            self.add_edge(a + offset, b + offset, p);
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph<&'static str, f64> {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(c, a, 3.0);
        g
    }

    #[test]
    fn construction_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn undirected_adjacency() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        let n: Vec<u32> = g.neighbors(1).iter().map(|&(v, _)| v).collect();
        assert_eq!(n, vec![0, 2]);
    }

    #[test]
    fn payload_access() {
        let mut g = triangle();
        assert_eq!(*g.vertex(2), "c");
        *g.vertex_mut(2) = "z";
        assert_eq!(*g.vertex(2), "z");
        let (a, b, w) = g.edge(1);
        assert_eq!((a, b, *w), (1, 2, 2.0));
    }

    #[test]
    fn self_loop_single_adjacency_entry() {
        let mut g: Graph<(), ()> = Graph::new();
        let v = g.add_vertex(());
        g.add_edge(v, v, ());
        assert_eq!(g.degree(v), 1);
    }

    #[test]
    fn absorb_offsets_ids() {
        let mut g = triangle();
        let h = triangle();
        let off = g.absorb(h);
        assert_eq!(off, 3);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let mut g: Graph<(), ()> = Graph::new();
        g.add_vertex(());
        g.add_edge(0, 5, ());
    }
}
