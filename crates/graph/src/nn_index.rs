//! Incremental exact nearest-neighbour index for RRT extension.
//!
//! RRT's access pattern is hostile to a static kd-tree: one insert after
//! every query. The naive answer — a linear scan per extension — is exactly
//! what makes radial RRT O(n²) per region tree. This index keeps the scan
//! sublinear while returning **bit-identical** answers to
//! [`crate::knn::nearest`] (same point, same `(distance, index)` tie-break),
//! so planners that switch to it keep every golden trace and determinism
//! digest unchanged.
//!
//! Structure: a balanced [`KdTree`] over a prefix of the points plus a small
//! unindexed tail of recent inserts. A query searches the tree and scans the
//! tail, then takes the minimum under the total order `(distance, insertion
//! index)` — both halves report global insertion indices, so the combined
//! answer equals the brute-force scan over the whole set. When the tail
//! outgrows a fixed fraction of the indexed prefix the tree is rebuilt over
//! everything (geometric rebuild ⇒ amortized O(log n) insert; the tail
//! bound keeps the per-query scan at O(n / `REBUILD_DIVISOR`) worst case,
//! in practice a few dozen points).

use crate::kdtree::KdTree;
use smp_geom::batch;
use smp_geom::Point;

/// Rebuild when the tail exceeds `indexed / REBUILD_DIVISOR` points.
const REBUILD_DIVISOR: usize = 8;
/// Never rebuild for tails smaller than this (tiny trees rebuild too often
/// otherwise and a 32-point scan is cheaper than a rebuild).
const MIN_TAIL: usize = 32;

/// An incrementally-growable exact 1-NN index over points in `R^D`.
#[derive(Debug, Clone, Default)]
pub struct IncrementalNn<const D: usize> {
    /// All points, in insertion order (insertion index = identity).
    points: Vec<Point<D>>,
    /// Balanced tree over `points[..indexed]`.
    tree: KdTree<D>,
    indexed: usize,
}

impl<const D: usize> IncrementalNn<D> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        IncrementalNn {
            points: Vec::with_capacity(cap),
            tree: KdTree::build(&[]),
            indexed: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with insertion index `i`.
    pub fn point(&self, i: usize) -> &Point<D> {
        &self.points[i]
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Append a point; returns its insertion index.
    pub fn push(&mut self, p: Point<D>) -> usize {
        self.points.push(p);
        let tail = self.points.len() - self.indexed;
        if tail > MIN_TAIL.max(self.indexed / REBUILD_DIVISOR) {
            self.tree = KdTree::build(&self.points);
            self.indexed = self.points.len();
        }
        self.points.len() - 1
    }

    /// Exact nearest neighbour of `query` as `(insertion index, distance)`
    /// — identical result to `knn::nearest(self.points(), query)`.
    ///
    /// The tail scan runs [`smp_geom::batch::dist_chunk`] four points per
    /// step (remainder point-at-a-time); each distance is bit-identical to
    /// `Point::dist` and candidates fold into `best` in insertion order
    /// under the strict `(distance, index)` total order, so the answer
    /// matches the scalar scan exactly. Still allocation-free.
    pub fn nearest(&self, query: &Point<D>) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = self.tree.nearest(query);
        // strict (distance, index) order: replace only when the candidate is
        // smaller, matching the brute-force min
        let fold = |best: Option<(usize, f64)>, cand: (usize, f64)| {
            Some(match best {
                None => cand,
                Some(b) => {
                    if cand.1.total_cmp(&b.1).then(cand.0.cmp(&b.0)) == std::cmp::Ordering::Less {
                        cand
                    } else {
                        b
                    }
                }
            })
        };
        let tail = &self.points[self.indexed..];
        let mut chunks = tail.chunks_exact(batch::LANES);
        let mut base = self.indexed;
        for chunk in &mut chunks {
            let ds = batch::dist_chunk(chunk, query);
            for (l, &d) in ds.iter().enumerate() {
                best = fold(best, (base + l, d));
            }
            base += batch::LANES;
        }
        for (off, p) in chunks.remainder().iter().enumerate() {
            best = fold(best, (base + off, p.dist(query)));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rnd(rng: &mut StdRng) -> Point<3> {
        Point::new([
            rng.random_range(0.0..1.0),
            rng.random_range(0.0..1.0),
            rng.random_range(0.0..1.0),
        ])
    }

    #[test]
    fn empty_index() {
        let idx: IncrementalNn<3> = IncrementalNn::new();
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(&Point::zero()), None);
    }

    #[test]
    fn matches_brute_force_interleaved() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = IncrementalNn::with_capacity(600);
        let mut pts: Vec<Point<3>> = Vec::new();
        for i in 0..600 {
            let p = rnd(&mut rng);
            assert_eq!(idx.push(p), i);
            pts.push(p);
            let q = rnd(&mut rng);
            assert_eq!(idx.nearest(&q), knn::nearest(&pts, &q), "after {i} inserts");
        }
    }

    #[test]
    fn duplicate_points_tie_break_to_lowest_index() {
        let mut idx = IncrementalNn::new();
        let p = Point::new([0.5, 0.5, 0.5]);
        // enough duplicates to straddle rebuilds and the tail
        for _ in 0..100 {
            idx.push(p);
        }
        let (i, d) = idx.nearest(&p).unwrap();
        assert_eq!(i, 0, "ties must break to the lowest insertion index");
        assert_eq!(d, 0.0);
        // also when the duplicate set is equidistant from the query
        let q = Point::new([0.2, 0.5, 0.5]);
        assert_eq!(idx.nearest(&q).unwrap().0, 0);
    }
}
