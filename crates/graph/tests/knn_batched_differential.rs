//! Differential property test: `KdTree::k_nearest_batched_into` (SoA
//! leaf-span scans) must return the *bit-identical* `(index, distance)`
//! list as `KdTree::k_nearest_into` (pure recursion) — the two visit
//! different candidate sets (`examined` differs by design), but the k-NN
//! result under the strict `(distance, index)` total order is unique, so
//! any exact algorithm must land on the same answer. Covers clouds
//! straddling the `SCAN_SPAN` leaf threshold, duplicate-heavy grids that
//! force distance ties, `k > n`, `k == 0`, and self-exclusion.

use proptest::prelude::*;
use smp_geom::Point;
use smp_graph::{KdTree, KnnScratch};

fn assert_batched_matches<const D: usize>(
    points: &[Point<D>],
    query: &Point<D>,
    k: usize,
    exclude: Option<u32>,
) -> Result<(), String> {
    let tree = KdTree::build(points);
    let mut scratch = KnnScratch::new();
    let (mut rec_examined, mut batch_examined) = (0u64, 0u64);
    let mut want = Vec::new();
    tree.k_nearest_into(
        query,
        k,
        exclude,
        &mut rec_examined,
        &mut scratch,
        &mut want,
    );
    let mut got = Vec::new();
    tree.k_nearest_batched_into(
        query,
        k,
        exclude,
        &mut batch_examined,
        &mut scratch,
        &mut got,
    );
    prop_assert_eq!(
        got.len(),
        want.len(),
        "result length differs for k={}, n={}",
        k,
        points.len()
    );
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        prop_assert_eq!(g.0, w.0, "rank {} index differs", i);
        prop_assert_eq!(
            g.1.to_bits(),
            w.1.to_bits(),
            "rank {} distance bits differ: {} vs {}",
            i,
            g.1,
            w.1
        );
    }
    // `examined` legitimately differs between the two (the span scan
    // counts every point it settles), but both must count *something*
    // whenever there was work to do.
    if !points.is_empty() && k > 0 {
        prop_assert!(rec_examined > 0, "recursive examined nothing");
        prop_assert!(batch_examined > 0, "batched examined nothing");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Continuous clouds sized 0..200: spans below, at, and well above
    /// the batched `SCAN_SPAN` leaf threshold, `k` free to exceed `n`.
    #[test]
    fn batched_matches_recursive_on_random_clouds(
        pts in prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 0..200),
        q in prop::array::uniform3(0.0f64..1.0),
        k in 0usize..210,
    ) {
        let points: Vec<Point<3>> = pts.into_iter().map(Point::new).collect();
        assert_batched_matches(&points, &Point::new(q), k, None)?;
    }

    /// Discrete coordinate grid: duplicate points and massive distance
    /// ties pin the ascending-(distance, index) tie-break inside the
    /// batched leaf scan's heap updates.
    #[test]
    fn batched_matches_recursive_with_duplicates(
        raw in prop::collection::vec(prop::array::uniform2(0u32..4), 1..120),
        qx in 0u32..4,
        qy in 0u32..4,
        k in 1usize..130,
    ) {
        let points: Vec<Point<2>> = raw
            .into_iter()
            .map(|c| Point::new([f64::from(c[0]) / 4.0, f64::from(c[1]) / 4.0]))
            .collect();
        let query = Point::new([f64::from(qx) / 4.0, f64::from(qy) / 4.0]);
        assert_batched_matches(&points, &query, k, None)?;
    }

    /// Self-exclusion must be honored inside the SoA span scan, where the
    /// excluded index can land anywhere in a settled chunk.
    #[test]
    fn batched_matches_recursive_with_exclusion(
        raw in prop::collection::vec(prop::array::uniform2(0u32..3), 2..100),
        pick in 0usize..100,
        k in 1usize..110,
    ) {
        let points: Vec<Point<2>> = raw
            .into_iter()
            .map(|c| Point::new([f64::from(c[0]) / 3.0, f64::from(c[1]) / 3.0]))
            .collect();
        let exclude = pick % points.len();
        let query = points[exclude];
        assert_batched_matches(&points, &query, k, Some(exclude as u32))?;
    }
}
