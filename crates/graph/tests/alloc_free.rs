//! Allocation-count assertions for the zero-allocation query paths.
//!
//! ISSUE 4 requires *zero heap allocations per `k_nearest_into` query*
//! (after buffer warm-up) — asserted here with a counting global allocator.
//! This test binary gets its own allocator, so the counts are exact.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smp_geom::Point;
use smp_graph::{IncrementalNn, KdTree, KnnScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        })
        .collect()
}

#[test]
fn k_nearest_into_allocates_nothing_after_warmup() {
    let pts = random_points(2000, 5);
    let tree = KdTree::build(&pts);
    let queries = random_points(256, 6);
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    let mut examined = 0u64;
    // warm-up: first call may size the heap and output buffers
    tree.k_nearest_into(&queries[0], 8, None, &mut examined, &mut scratch, &mut out);

    let before = alloc_count();
    for q in &queries {
        tree.k_nearest_into(q, 8, Some(7), &mut examined, &mut scratch, &mut out);
        std::hint::black_box(&out);
    }
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "k_nearest_into allocated {} times over {} queries",
        after - before,
        queries.len()
    );
}

#[test]
fn kdtree_nearest_allocates_nothing() {
    let pts = random_points(2000, 9);
    let tree = KdTree::build(&pts);
    let queries = random_points(256, 10);

    let before = alloc_count();
    for q in &queries {
        std::hint::black_box(tree.nearest(q));
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "KdTree::nearest allocated");
}

#[test]
fn incremental_nn_query_allocates_nothing() {
    let pts = random_points(4000, 13);
    let mut idx = IncrementalNn::with_capacity(pts.len());
    for p in &pts {
        idx.push(*p);
    }
    let queries = random_points(256, 14);

    let before = alloc_count();
    for q in &queries {
        std::hint::black_box(idx.nearest(q));
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "IncrementalNn::nearest allocated");
}

#[test]
fn kdtree_build_allocates_o_one_buffers() {
    // the build should allocate the interleaved buffer + the two output
    // vecs — a handful of allocations, not O(n log n) per-level scratch
    let pts = random_points(4096, 21);
    let before = alloc_count();
    let tree = KdTree::build(&pts);
    let after = alloc_count();
    std::hint::black_box(&tree);
    assert!(
        after - before <= 8,
        "KdTree::build allocated {} times (expected a constant few)",
        after - before
    );
}
