//! Differential property test: `KdTree::k_nearest` must agree *exactly*
//! with the brute-force oracle in `knn.rs` — same indices, same order,
//! same distances — on random clouds, including the adversarial shapes a
//! uniform cloud almost never produces: duplicate points (discrete
//! coordinate grids force ties), `k > n`, `k == 0`, and self-exclusion.

use proptest::prelude::*;
use smp_geom::Point;
use smp_graph::{knn, KdTree};

fn assert_knn_matches<const D: usize>(
    points: &[Point<D>],
    query: &Point<D>,
    k: usize,
    exclude: Option<usize>,
) -> Result<(), String> {
    let tree = KdTree::build(points);
    let got = tree.k_nearest(query, k, exclude.map(|e| e as u32));
    let want = knn::k_nearest(points, query, k, exclude);
    prop_assert_eq!(
        got.len(),
        want.len(),
        "result length differs for k={}, n={}",
        k,
        points.len()
    );
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        prop_assert_eq!(g.0, w.0, "rank {} index differs", i);
        prop_assert!(
            (g.1 - w.1).abs() < 1e-12,
            "rank {} distance differs: {} vs {}",
            i,
            g.1,
            w.1
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Continuous random clouds: generic agreement, k free to exceed n.
    #[test]
    fn matches_bruteforce_on_random_clouds(
        pts in prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 0..140),
        q in prop::array::uniform3(0.0f64..1.0),
        k in 0usize..150,
    ) {
        let points: Vec<Point<3>> = pts.into_iter().map(Point::new).collect();
        assert_knn_matches(&points, &Point::new(q), k, None)?;
    }

    /// Discrete coordinate grid (each axis one of 4 values): duplicate
    /// points and massive distance ties are the norm, so this pins the
    /// ascending-(distance, index) tie-break contract.
    #[test]
    fn matches_bruteforce_with_duplicates(
        raw in prop::collection::vec(prop::array::uniform2(0u32..4), 1..80),
        qx in 0u32..4,
        qy in 0u32..4,
        k in 1usize..90,
    ) {
        let points: Vec<Point<2>> = raw
            .into_iter()
            .map(|c| Point::new([f64::from(c[0]) / 4.0, f64::from(c[1]) / 4.0]))
            .collect();
        let query = Point::new([f64::from(qx) / 4.0, f64::from(qy) / 4.0]);
        assert_knn_matches(&points, &query, k, None)?;
    }

    /// Self-exclusion: querying from a member of the set must skip it, in
    /// both implementations, even when the set contains its duplicates.
    #[test]
    fn matches_bruteforce_with_exclusion(
        raw in prop::collection::vec(prop::array::uniform2(0u32..3), 2..60),
        pick in 0usize..60,
        k in 1usize..70,
    ) {
        let points: Vec<Point<2>> = raw
            .into_iter()
            .map(|c| Point::new([f64::from(c[0]) / 3.0, f64::from(c[1]) / 3.0]))
            .collect();
        let exclude = pick % points.len();
        let query = points[exclude];
        assert_knn_matches(&points, &query, k, Some(exclude))?;
    }
}

/// `k > n` with duplicates must return every non-excluded point exactly
/// once (a broken visit could return a duplicate index twice).
#[test]
fn k_exceeding_n_returns_each_index_once() {
    let points: Vec<Point<2>> = vec![
        Point::new([0.5, 0.5]),
        Point::new([0.5, 0.5]),
        Point::new([0.5, 0.5]),
        Point::new([0.25, 0.75]),
    ];
    let tree = KdTree::build(&points);
    let got = tree.k_nearest(&Point::new([0.5, 0.5]), 10, None);
    assert_eq!(
        got.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "every index exactly once, ties by ascending index"
    );
}
