//! Differential equivalence suite for the optimized NN kernels.
//!
//! The PR-4 kernel overhaul (ISSUE 4) is only safe because every golden
//! trace and determinism digest depends on NN results *and examined-candidate
//! counts* being bit-identical. This suite pins that equivalence three ways:
//!
//! 1. the `select_nth_unstable` kd-tree build produces the **exact array
//!    layout** of the reference full-sort median build (so `examined`
//!    counters cannot drift);
//! 2. `KdTree` queries equal brute-force [`smp_graph::knn`] under the
//!    `(distance, index)` total order, including duplicate points;
//! 3. [`IncrementalNn`] equals brute force under interleaved insert/query.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smp_geom::Point;
use smp_graph::{knn, IncrementalNn, KdTree, KnnScratch};

/// The pre-PR-4 kd-tree build: median by full index sort per level,
/// O(n log² n) with two fresh buffers per recursion. Kept verbatim as the
/// layout oracle for the optimized build.
fn reference_build<const D: usize>(points: &[Point<D>]) -> (Vec<Point<D>>, Vec<u32>) {
    fn rec<const D: usize>(
        pts: &mut [Point<D>],
        orig: &mut [u32],
        axis: usize,
        lo: usize,
        hi: usize,
    ) {
        if hi - lo <= 1 {
            return;
        }
        let mid = (lo + hi) / 2;
        let mut idx: Vec<usize> = (lo..hi).collect();
        idx.sort_by(|&a, &b| {
            pts[a][axis]
                .total_cmp(&pts[b][axis])
                .then(orig[a].cmp(&orig[b]))
        });
        let new_pts: Vec<Point<D>> = idx.iter().map(|&i| pts[i]).collect();
        let new_orig: Vec<u32> = idx.iter().map(|&i| orig[i]).collect();
        pts[lo..hi].copy_from_slice(&new_pts);
        orig[lo..hi].copy_from_slice(&new_orig);
        let next = (axis + 1) % D;
        rec(pts, orig, next, lo, mid);
        rec(pts, orig, next, mid + 1, hi);
    }
    let mut pts = points.to_vec();
    let mut orig: Vec<u32> = (0..points.len() as u32).collect();
    if !pts.is_empty() {
        rec(&mut pts, &mut orig, 0, 0, points.len());
    }
    (pts, orig)
}

fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        })
        .collect()
}

/// Point sets with heavy duplication: duplicates stress the
/// `(coordinate, original index)` tie-break in the median partition and the
/// `(distance, index)` tie-break in queries.
fn with_duplicates(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut pts = random_points(n, seed);
    let dups: Vec<Point<3>> = pts.iter().step_by(3).copied().collect();
    pts.extend(dups);
    // and a fully degenerate cluster
    pts.extend(std::iter::repeat_n(Point::splat(0.5), n / 4));
    pts
}

#[test]
fn optimized_build_layout_is_bit_identical_to_reference() {
    for (n, seed) in [
        (0usize, 1u64),
        (1, 2),
        (2, 3),
        (7, 4),
        (100, 5),
        (1000, 6),
        (4097, 7),
    ] {
        let pts = random_points(n, seed);
        let tree = KdTree::build(&pts);
        let (ref_pts, ref_orig) = reference_build(&pts);
        let (got_pts, got_orig) = tree.layout();
        assert_eq!(got_orig, &ref_orig[..], "layout drift at n={n}");
        assert_eq!(got_pts, &ref_pts[..], "point order drift at n={n}");
    }
    // duplicated coordinates: the tie-break must fully determine the layout
    for seed in [11u64, 12, 13] {
        let pts = with_duplicates(240, seed);
        let tree = KdTree::build(&pts);
        let (ref_pts, ref_orig) = reference_build(&pts);
        let (got_pts, got_orig) = tree.layout();
        assert_eq!(got_orig, &ref_orig[..], "layout drift with duplicates");
        assert_eq!(got_pts, &ref_pts[..]);
    }
}

#[test]
fn kdtree_queries_match_brute_force_with_duplicates() {
    let pts = with_duplicates(300, 21);
    let tree = KdTree::build(&pts);
    let mut rng = StdRng::seed_from_u64(99);
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    for i in 0..120 {
        let q = if i % 3 == 0 {
            pts[i] // on-point queries hit the duplicate tie-break hardest
        } else {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        };
        for k in [1usize, 4, 9] {
            let slow = knn::k_nearest(&pts, &q, k, None);
            let fast = tree.k_nearest(&q, k, None);
            assert_eq!(fast, slow, "k={k} mismatch (identical tie order required)");
            let mut examined = 0;
            tree.k_nearest_into(&q, k, None, &mut examined, &mut scratch, &mut out);
            assert_eq!(out, slow, "k_nearest_into drifted from k_nearest");
        }
        assert_eq!(tree.nearest(&q), knn::nearest(&pts, &q));
    }
}

#[test]
fn scratch_examined_counts_match_fresh_queries() {
    // the examined count feeds work counters -> golden traces; the scratch
    // path must count exactly like the allocating path
    let pts = random_points(500, 33);
    let tree = KdTree::build(&pts);
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..200 {
        let q = Point::new([
            rng.random_range(0.0..1.0),
            rng.random_range(0.0..1.0),
            rng.random_range(0.0..1.0),
        ]);
        let mut a = 0u64;
        tree.k_nearest_into(&q, 6, Some(3), &mut a, &mut scratch, &mut out);
        let mut b = 0u64;
        let fresh = tree.k_nearest_counted(&q, 6, Some(3), &mut b);
        assert_eq!(a, b);
        assert_eq!(out, fresh);
    }
}

#[test]
fn incremental_nn_equals_brute_force_with_duplicates() {
    let mut rng = StdRng::seed_from_u64(55);
    let mut idx: IncrementalNn<3> = IncrementalNn::new();
    let mut pts: Vec<Point<3>> = Vec::new();
    for i in 0..800usize {
        // every 5th insert is a duplicate of an earlier point
        let p = if i % 5 == 4 {
            pts[rng.random_range(0..pts.len() as u64) as usize]
        } else {
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ])
        };
        idx.push(p);
        pts.push(p);
        // query with a fresh point, an existing point, and a duplicate
        let queries = [
            Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ]),
            pts[i / 2],
            p,
        ];
        for q in &queries {
            assert_eq!(
                idx.nearest(q),
                knn::nearest(&pts, q),
                "after {} inserts",
                i + 1
            );
        }
    }
}
