//! Mutation-canary and campaign integration tests.
//!
//! Built normally, the fuzz campaign must be clean. Built with
//! `RUSTFLAGS="--cfg smp_check_canary"`, smp-runtime plants a deliberate
//! double-execution bug (the first granted steal batch leaves its last
//! task behind in the victim queue); the oracle suite must catch it,
//! shrink it, and produce a replay file that still fails — proof the
//! whole detection pipeline works, not just that the happy path is green.

use smp_check::harness::{fuzz, FuzzConfig};
use smp_check::{oracles, CaseSpec, MachineKind, SchedulePlan};
use smp_runtime::{FaultPlan, StealAmount, StealConfig, StealPolicyKind};

/// A case guaranteed to trigger at least one steal grant: all work on
/// PE 0, a second idle PE, aggressive stealing, no faults.
fn guaranteed_steal_case() -> CaseSpec {
    CaseSpec {
        costs: vec![10_000; 16],
        assignment: vec![(0..16).collect(), Vec::new()],
        machine: MachineKind::Hopper,
        steal: Some(StealConfig {
            policy: StealPolicyKind::RandK(4),
            amount: StealAmount::Half,
        }),
        sim_seed: 42,
        fault: FaultPlan::new(0),
        schedule: SchedulePlan::Fifo,
    }
}

#[cfg(not(smp_check_canary))]
mod clean_build {
    use super::*;

    #[test]
    fn steal_heavy_case_satisfies_all_oracles() {
        let violations = oracles::check_case(&guaranteed_steal_case());
        assert!(
            violations.is_empty(),
            "clean build must pass: {violations:?}"
        );
    }

    #[test]
    fn randomized_campaign_is_clean() {
        let cfg = FuzzConfig {
            runs: 120,
            base_seed: 0xC1EA4,
            out_dir: None,
            fail_fast: false,
        };
        let outcome = fuzz(&cfg, |_, _, _| {});
        assert_eq!(outcome.runs_executed, 120);
        assert!(
            outcome.ok(),
            "campaign found violations: {:?}",
            outcome
                .failures
                .iter()
                .map(|f| (f.seed, &f.violations))
                .collect::<Vec<_>>()
        );
    }
}

#[cfg(smp_check_canary)]
mod canary_build {
    use super::*;
    use smp_check::{repro, shrink};

    #[test]
    fn oracles_catch_the_planted_double_execution() {
        let violations = oracles::check_case(&guaranteed_steal_case());
        assert!(
            violations.iter().any(|v| v.oracle == "exactly_once"),
            "exactly_once must flag the canary, got: {violations:?}"
        );
    }

    #[test]
    fn canary_shrinks_and_replays_deterministically() {
        let case = guaranteed_steal_case();
        let (shrunk, violations) = shrink::shrink(&case);
        assert!(
            !violations.is_empty(),
            "shrinking must preserve the failure"
        );
        assert!(
            shrunk.size() <= case.size(),
            "shrinking must not grow the case"
        );

        // the shrunk case must survive a serialize → parse → re-check
        // round trip with the identical verdict, twice (determinism)
        let text = repro::serialize(&shrunk, &[]);
        let back = repro::parse(&text).expect("repro must parse");
        assert_eq!(shrunk, back, "repro round trip must be lossless");
        let first = oracles::check_case(&back);
        let second = oracles::check_case(&back);
        assert_eq!(first, second, "replay must be deterministic");
        assert!(
            first.iter().any(|v| v.oracle == "exactly_once"),
            "replayed case must still fail exactly_once: {first:?}"
        );
    }

    #[test]
    fn fuzz_campaign_finds_the_canary() {
        let cfg = FuzzConfig {
            runs: 60,
            base_seed: 0,
            out_dir: None,
            fail_fast: true,
        };
        let outcome = fuzz(&cfg, |_, _, _| {});
        assert!(
            !outcome.ok(),
            "60 randomized runs must trip over a planted double execution"
        );
    }
}
