//! Portfolio smoke oracles: randomized restart-portfolio cases checked
//! for deterministic settlement and bounded cancellation overshoot.
//!
//! The portfolio engine promises (DESIGN.md §14) that the winner and the
//! wasted-work ledger are pure functions of the case — independent of
//! backend, worker count, and physical completion order — and that
//! first-success cancellation stops a round with at most one in-flight
//! attempt per worker still finishing. This module sweeps that contract
//! over generated cases:
//!
//! - **ledger_closure** — every launched attempt is either required or
//!   avoided, and the wasted/winner vcosts match a direct recomputation
//!   of the deterministic settle order;
//! - **determinism_des** — two DES runs produce byte-identical ledgers;
//! - **differential_backends** — the live ledger, winner, and winner
//!   payload equal the DES ones at the case's worker count;
//! - **determinism_live** — two racing live runs agree with each other;
//! - **cancel_overshoot** — in every fired live round, completions after
//!   the cancel fired are bounded by one in-flight task per worker
//!   ("no work after global cancel beyond one in-flight task per
//!   worker"); DES rounds may have none at all.
//!
//! Run it: `cargo run -p smp-check -- --portfolio-smoke 50`.

use crate::oracles::Violation;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use smp_core::portfolio::{run_portfolio_on, Attempt, PortfolioSpec};
use smp_core::restart::RestartSchedule;
use smp_runtime::{Backend, LiveTuning, MachineModel, StealAmount, StealConfig, StealPolicyKind};

macro_rules! fail {
    ($out:expr, $oracle:literal, $($fmt:tt)+) => {
        $out.push(Violation { oracle: $oracle, detail: format!($($fmt)+) })
    };
}

/// One generated portfolio case: shape, schedule, and attempt seed.
#[derive(Debug, Clone)]
pub struct PortfolioCase {
    /// Portfolio size K.
    pub members: usize,
    /// Worker count for both backends.
    pub workers: usize,
    /// Restart schedule under test.
    pub schedule: RestartSchedule,
    /// Round cap.
    pub max_rounds: usize,
    /// Optional steal configuration.
    pub steal: Option<StealConfig>,
    /// Engine seed (round-seed derivation).
    pub seed: u64,
    /// Seed of the synthetic attempt family.
    pub attempt_seed: u64,
}

/// Generate a random case from `seed`: 1–6 members on 1–4 workers, any
/// schedule kind, with and without stealing.
pub fn generate_portfolio_case(seed: u64) -> PortfolioCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00F0_1105);
    let members = rng.random_range(1usize..7);
    let workers = rng.random_range(1usize..5);
    let schedule = match rng.random_range(0u32..3) {
        0 => RestartSchedule::None,
        1 => RestartSchedule::Fixed(rng.random_range(32u64..512)),
        _ => RestartSchedule::Luby(rng.random_range(16u64..128)),
    };
    let steal = if rng.random_range(0u32..2) == 0 {
        None
    } else {
        let policy = match rng.random_range(0u32..3) {
            0 => StealPolicyKind::RandK(rng.random_range(1usize..9)),
            1 => StealPolicyKind::Diffusive,
            _ => StealPolicyKind::Hybrid(rng.random_range(2usize..9)),
        };
        let mut sc = StealConfig::new(policy);
        if rng.random_range(0u32..2) == 0 {
            sc.amount = StealAmount::Half;
        }
        Some(sc)
    };
    PortfolioCase {
        members,
        workers,
        schedule,
        max_rounds: rng.random_range(1usize..25),
        steal,
        seed: rng.next_u64(),
        attempt_seed: rng.next_u64(),
    }
}

/// The synthetic pure attempt family: solved-ness and vcost are a
/// splitmix-style hash of `(attempt_seed, member, round)` scaled by the
/// budget; a short spin gives live cancellation something to race.
fn synth_attempt(attempt_seed: u64, m: usize, r: usize, budget: Option<u64>) -> Attempt<u64> {
    let mut x = attempt_seed
        ^ (m as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (r as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    let mut spin = x | 1;
    for _ in 0..256 {
        spin = spin.rotate_left(13) ^ spin.wrapping_mul(5);
    }
    // Deeper budgets solve more often — a crude heavy-tail stand-in.
    let b = budget.unwrap_or(1 << 16).min(1 << 16);
    Attempt {
        solved: x % (1 << 16) < b.saturating_mul(4),
        vcost: 1_000 + (x ^ spin) % 9_000,
        payload: x,
    }
}

fn spec_for<'a>(case: &PortfolioCase, machine: &'a MachineModel) -> PortfolioSpec<'a> {
    PortfolioSpec {
        members: case.members,
        workers: case.workers,
        schedule: case.schedule,
        max_rounds: case.max_rounds,
        machine,
        steal: case.steal,
        seed: case.seed,
        faults: None,
    }
}

/// Run every portfolio oracle on one case.
pub fn check_portfolio_case(case: &PortfolioCase) -> Vec<Violation> {
    let mut out = Vec::new();
    let machine = MachineModel::hopper();
    let spec = spec_for(case, &machine);
    let aseed = case.attempt_seed;
    let attempt = move |m: usize, r: usize, b: Option<u64>| synth_attempt(aseed, m, r, b);

    let des = match run_portfolio_on(&spec, Backend::Des, attempt) {
        Ok(o) => o,
        Err(e) => {
            fail!(out, "differential_backends", "DES run failed: {e}");
            return out;
        }
    };
    let des2 = match run_portfolio_on(&spec, Backend::Des, attempt) {
        Ok(o) => o,
        Err(e) => {
            fail!(out, "determinism_des", "second DES run failed: {e}");
            return out;
        }
    };
    if des.ledger != des2.ledger || des.winner != des2.winner {
        fail!(
            out,
            "determinism_des",
            "two DES runs disagree: {:?} vs {:?}",
            des.ledger,
            des2.ledger
        );
    }

    // Ledger closure + direct recomputation of the deterministic settle
    // order: rounds run until the first round with a solving member; in
    // that round the winner is the lowest solving member id.
    if !des.ledger.closes() {
        fail!(
            out,
            "ledger_closure",
            "ledger does not close: {:?}",
            des.ledger
        );
    }
    let k = case.members.max(1);
    let n_rounds = case.schedule.max_rounds(case.max_rounds);
    let mut ref_winner = None;
    let mut ref_wasted = 0u64;
    let mut ref_winner_vcost = 0u64;
    let mut ref_rounds = 0u64;
    'rounds: for r in 0..n_rounds {
        ref_rounds += 1;
        let budget = case.schedule.cutoff(r);
        for m in 0..k {
            let a = synth_attempt(aseed, m, r, budget);
            if a.solved {
                ref_winner = Some((m as u64, r as u64));
                ref_winner_vcost = a.vcost;
                break 'rounds;
            }
            ref_wasted += a.vcost;
        }
    }
    if des.ledger.winner != ref_winner
        || des.ledger.winner_vcost != ref_winner_vcost
        || des.ledger.wasted_vcost != ref_wasted
        || des.ledger.rounds_run != ref_rounds
    {
        fail!(
            out,
            "ledger_closure",
            "ledger disagrees with direct recomputation: got {:?}, want winner {:?} vcost {} wasted {} rounds {}",
            des.ledger,
            ref_winner,
            ref_winner_vcost,
            ref_wasted,
            ref_rounds
        );
    }

    let live = match run_portfolio_on(&spec, Backend::Live(LiveTuning::default()), attempt) {
        Ok(o) => o,
        Err(e) => {
            fail!(out, "differential_backends", "live run failed: {e}");
            return out;
        }
    };
    if live.ledger != des.ledger {
        fail!(
            out,
            "differential_backends",
            "live ledger {:?} != DES ledger {:?}",
            live.ledger,
            des.ledger
        );
    }
    if live.winner != des.winner {
        fail!(
            out,
            "differential_backends",
            "live winner payload {:?} != DES {:?}",
            live.winner,
            des.winner
        );
    }

    let live2 = match run_portfolio_on(&spec, Backend::Live(LiveTuning::default()), attempt) {
        Ok(o) => o,
        Err(e) => {
            fail!(out, "determinism_live", "second live run failed: {e}");
            return out;
        }
    };
    if live2.ledger != live.ledger || live2.winner != live.winner {
        fail!(
            out,
            "determinism_live",
            "two live runs disagree: {:?} vs {:?}",
            live.ledger,
            live2.ledger
        );
    }

    // Cancellation overshoot: after the round's token fires, each worker
    // may finish at most its one in-flight attempt.
    for r in &live.rounds {
        let overshoot = r.post_fire_completions();
        if overshoot > case.workers as u64 {
            fail!(
                out,
                "cancel_overshoot",
                "round {}: {} completions after fire > {} workers",
                r.round,
                overshoot,
                case.workers
            );
        }
    }
    for r in &des.rounds {
        if r.post_fire_completions() != 0 {
            fail!(
                out,
                "cancel_overshoot",
                "DES round {} reports {} post-fire completions (must be 0)",
                r.round,
                r.post_fire_completions()
            );
        }
    }
    out
}

/// Sweep `runs` generated cases; returns `(case seed, violations)` for
/// every failing case.
pub fn portfolio_smoke(runs: u64, base_seed: u64) -> Vec<(u64, Vec<Violation>)> {
    let mut failures = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let case = generate_portfolio_case(seed);
        let violations = check_portfolio_case(&case);
        if !violations.is_empty() {
            failures.push((seed, violations));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_covers_every_schedule_kind() {
        let mut none = 0;
        let mut fixed = 0;
        let mut luby = 0;
        for s in 0..64 {
            match generate_portfolio_case(s).schedule {
                RestartSchedule::None => none += 1,
                RestartSchedule::Fixed(_) => fixed += 1,
                RestartSchedule::Luby(_) => luby += 1,
            }
        }
        assert!(none > 0 && fixed > 0 && luby > 0);
    }

    #[test]
    fn smoke_passes_on_a_small_sweep() {
        let failures = portfolio_smoke(8, 0);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
