//! `smp-check` CLI — fuzz the DES or replay a shrunk failure.
//!
//! ```text
//! smp-check [--runs N] [--seed S] [--out DIR] [--fail-fast]
//! smp-check --replay FILE
//! smp-check --live-smoke N [--seed S] [--faults]
//! smp-check --dist-smoke N [--seed S] [--faults] [--out DIR]
//! smp-check --portfolio-smoke N [--seed S]
//! smp-check --serve-smoke N [--seed S] [--out DIR]
//! ```
//!
//! Exit status is 0 only if every run satisfied every oracle.

use smp_check::harness::{fuzz, FuzzConfig};
use smp_check::{oracles, repro};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = FuzzConfig {
        runs: 1000,
        base_seed: 0,
        out_dir: Some(PathBuf::from("target/smp-check")),
        fail_fast: false,
    };
    let mut replay: Option<PathBuf> = None;
    let mut live_smoke: Option<u64> = None;
    let mut dist_smoke: Option<u64> = None;
    let mut portfolio_smoke: Option<u64> = None;
    let mut serve_smoke: Option<u64> = None;
    let mut live_faults = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("smp-check: {arg} needs {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--runs" => {
                let v = take("a count");
                cfg.runs = v.parse().unwrap_or_else(|e| {
                    eprintln!("smp-check: bad --runs {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let v = take("a seed");
                cfg.base_seed = v.parse().unwrap_or_else(|e| {
                    eprintln!("smp-check: bad --seed {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            "--out" => cfg.out_dir = Some(PathBuf::from(take("a directory"))),
            "--no-out" => cfg.out_dir = None,
            "--fail-fast" => cfg.fail_fast = true,
            "--replay" => replay = Some(PathBuf::from(take("a repro file"))),
            "--live-smoke" => {
                let v = take("a run count");
                live_smoke = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("smp-check: bad --live-smoke {v:?}: {e}");
                    std::process::exit(2);
                }));
            }
            "--faults" => live_faults = true,
            "--dist-smoke" => {
                let v = take("a run count");
                dist_smoke = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("smp-check: bad --dist-smoke {v:?}: {e}");
                    std::process::exit(2);
                }));
            }
            "--portfolio-smoke" => {
                let v = take("a run count");
                portfolio_smoke = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("smp-check: bad --portfolio-smoke {v:?}: {e}");
                    std::process::exit(2);
                }));
            }
            "--serve-smoke" => {
                let v = take("a run count");
                serve_smoke = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("smp-check: bad --serve-smoke {v:?}: {e}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: smp-check [--runs N] [--seed S] [--out DIR | --no-out] [--fail-fast]\n\
                     \x20      smp-check --replay FILE\n\
                     \x20      smp-check --live-smoke N [--seed S] [--faults]\n\
                     \x20      smp-check --dist-smoke N [--seed S] [--faults] [--out DIR]\n\
                     \x20      smp-check --portfolio-smoke N [--seed S]\n\
                     \x20      smp-check --serve-smoke N [--seed S] [--out DIR]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("smp-check: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = replay {
        return run_replay(&path);
    }

    if let Some(runs) = serve_smoke {
        return run_serve_smoke(runs, cfg.base_seed, cfg.out_dir.as_deref());
    }

    if let Some(runs) = dist_smoke {
        return run_dist_smoke(runs, cfg.base_seed, live_faults, cfg.out_dir.as_deref());
    }

    if let Some(runs) = portfolio_smoke {
        println!(
            "smp-check: portfolio smoke — {runs} restart-portfolio cases on both backends (seed {})",
            cfg.base_seed
        );
        let failures = smp_check::portfolio_smoke(runs, cfg.base_seed);
        return if failures.is_empty() {
            println!("smp-check: OK — {runs} portfolio cases, all oracles satisfied");
            ExitCode::SUCCESS
        } else {
            for (seed, violations) in &failures {
                eprintln!("smp-check: portfolio seed {seed} FAILED:");
                for v in violations {
                    eprintln!("  {v}");
                }
            }
            eprintln!(
                "smp-check: {} of {runs} portfolio cases violated an oracle",
                failures.len()
            );
            ExitCode::FAILURE
        };
    }

    if let Some(runs) = live_smoke {
        let mode = if live_faults {
            "fault-bearing generator cases"
        } else {
            "generator cases"
        };
        println!(
            "smp-check: live smoke — {runs} {mode} on the shared-memory backend (seed {})",
            cfg.base_seed
        );
        let failures = if live_faults {
            smp_check::live_smoke_faulted(runs, cfg.base_seed)
        } else {
            smp_check::live_smoke(runs, cfg.base_seed)
        };
        return if failures.is_empty() {
            println!("smp-check: OK — {runs} live runs, all oracles satisfied");
            ExitCode::SUCCESS
        } else {
            for (seed, violations) in &failures {
                eprintln!("smp-check: live seed {seed} FAILED:");
                for v in violations {
                    eprintln!("  {v}");
                }
            }
            eprintln!(
                "smp-check: {} of {runs} live runs violated an oracle",
                failures.len()
            );
            ExitCode::FAILURE
        };
    }

    println!(
        "smp-check: fuzzing {} runs from seed {}",
        cfg.runs, cfg.base_seed
    );
    let stride = (cfg.runs / 20).max(1);
    let outcome = fuzz(&cfg, |done, total, fails| {
        if done % stride == 0 || done == total {
            println!("  {done}/{total} runs, {fails} failure(s)");
        }
    });
    if outcome.ok() {
        println!(
            "smp-check: OK — {} runs, all oracles satisfied",
            outcome.runs_executed
        );
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!(
                "smp-check: seed {} FAILED (shrunk to {} tasks / {} PEs):",
                f.seed,
                f.shrunk.num_tasks(),
                f.shrunk.num_pes()
            );
            for v in &f.violations {
                eprintln!("  {v}");
            }
            if let Some(p) = &f.repro_path {
                eprintln!("  repro: {} (replay with --replay)", p.display());
            }
        }
        eprintln!(
            "smp-check: {} of {} runs violated an oracle",
            outcome.failures.len(),
            outcome.runs_executed
        );
        ExitCode::FAILURE
    }
}

fn run_dist_smoke(
    runs: u64,
    base_seed: u64,
    faults: bool,
    out_dir: Option<&std::path::Path>,
) -> ExitCode {
    let mode = if faults {
        "fault-bearing generator cases"
    } else {
        "generator cases"
    };
    println!("smp-check: dist smoke — {runs} {mode} on real worker processes (seed {base_seed})");
    let failures = if faults {
        smp_check::dist_smoke_faulted(runs, base_seed)
    } else {
        smp_check::dist_smoke(runs, base_seed)
    };
    if failures.is_empty() {
        println!("smp-check: OK — {runs} dist runs, all protocol oracles satisfied (NoTaskDuplication, NoTaskLoss, Progress)");
        return ExitCode::SUCCESS;
    }
    for (seed, violations) in &failures {
        eprintln!("smp-check: dist seed {seed} FAILED:");
        for v in violations {
            eprintln!("  {v}");
        }
        if let Some(dir) = out_dir {
            let spec = smp_check::gen::generate_case(*seed);
            let mut context = vec![
                format!("dist smoke seed {seed} (backend: worker processes)"),
                format!(
                    "violated: {}",
                    violations
                        .iter()
                        .map(|v| v.oracle)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ];
            if faults {
                context.push(format!(
                    "dist fault plan: {:?}",
                    smp_check::generate_dist_fault_plan(*seed, spec.num_pes())
                ));
            }
            let path = dir.join(format!("dist-{seed}.repro"));
            match std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, smp_check::serialize(&spec, &context)))
            {
                Ok(()) => eprintln!("  repro: {} (replay with --replay)", path.display()),
                Err(e) => eprintln!("  could not write repro: {e}"),
            }
        }
    }
    eprintln!(
        "smp-check: {} of {runs} dist runs violated an oracle",
        failures.len()
    );
    ExitCode::FAILURE
}

fn run_serve_smoke(runs: u64, base_seed: u64, out_dir: Option<&std::path::Path>) -> ExitCode {
    println!(
        "smp-check: serve smoke — {runs} multi-tenant workloads, batched vs sequential on both backends (seed {base_seed})"
    );
    let failures = smp_check::serve_smoke(runs, base_seed);
    if failures.is_empty() {
        println!("smp-check: OK — {runs} serve cases, all oracles satisfied");
        return ExitCode::SUCCESS;
    }
    for (seed, violations) in &failures {
        eprintln!("smp-check: serve seed {seed} FAILED:");
        for v in violations {
            eprintln!("  {v}");
        }
        let case = smp_check::generate_serve_case(*seed);
        let shrunk =
            smp_check::shrink_serve_case(&case, |c| !smp_check::check_serve_case(c).is_empty());
        eprintln!(
            "  shrunk to {} request(s), {} thread(s), batch_max {}",
            shrunk.requests.len(),
            shrunk.threads,
            shrunk.batch_max
        );
        if let Some(dir) = out_dir {
            let path = dir.join(format!("serve-{seed}.repro"));
            match std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, smp_check::serve::serialize_serve(&shrunk)))
            {
                Ok(()) => eprintln!("  repro: {} (replay with --replay)", path.display()),
                Err(e) => eprintln!("  could not write repro: {e}"),
            }
        }
    }
    eprintln!(
        "smp-check: {} of {runs} serve cases violated an oracle",
        failures.len()
    );
    ExitCode::FAILURE
}

fn run_replay(path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smp-check: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    // Dispatch on the header line: serve repro files carry their own
    // format and oracle set.
    if text.lines().next().map(str::trim) == Some("smp-serve-repro v1") {
        let case = match smp_check::serve::parse_serve(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("smp-check: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        println!(
            "smp-check: replaying {} ({} request(s), {} thread(s))",
            path.display(),
            case.requests.len(),
            case.threads
        );
        let violations = smp_check::check_serve_case(&case);
        return if violations.is_empty() {
            println!("smp-check: replay PASSED — all oracles satisfied");
            ExitCode::SUCCESS
        } else {
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!(
                "smp-check: replay still violates {} oracle(s)",
                violations.len()
            );
            ExitCode::FAILURE
        };
    }
    let spec = match repro::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smp-check: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    println!(
        "smp-check: replaying {} ({} tasks, {} PEs)",
        path.display(),
        spec.num_tasks(),
        spec.num_pes()
    );
    let violations = oracles::check_case(&spec);
    if violations.is_empty() {
        println!("smp-check: replay PASSED — all oracles satisfied");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("  {v}");
        }
        eprintln!(
            "smp-check: replay still violates {} oracle(s)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
