//! Live-backend smoke oracles: the invariant catalog applied to the real
//! shared-memory executor.
//!
//! The DES fuzzer explores virtual-time schedules deterministically; the
//! live backend's schedules come from the OS, so they cannot be replayed
//! or shrunk. What *can* be checked on every run (DESIGN.md §12):
//!
//! - **exactly_once_live** — every task executed exactly once by a real
//!   worker, and per-worker counters match final ownership;
//! - **steal_accounting_live** — attempts = hits + misses, stolen
//!   executions are backed by transfers, batch bounds hold, and a static
//!   schedule produces zero steal traffic;
//! - **result_determinism** — two runs of the same case (racing their
//!   steals differently) return byte-identical result vectors.
//!
//! Cases are borrowed from the DES fuzzer's generator, so the live smoke
//! sweeps the same space of shapes (imbalanced queues, empty PEs, every
//! victim policy and steal amount); costs drive a synthetic spin so the
//! schedule actually contends.
//!
//! A second, fault-bearing sweep ([`live_smoke_faulted`]) re-runs each
//! case under a deterministic [`LiveFaultPlan`] (injected panics, induced
//! stragglers, dropped steal grants) and checks the faulted catalog:
//! recovery must complete with results byte-identical to a fault-free
//! baseline, every off-owner execution must be backed by a grant or a
//! recovery, and recorded crashes must not exceed the plan's doomed
//! workers.

use crate::case::CaseSpec;
use crate::oracles::Violation;
use smp_runtime::{
    ExecError, ExecOutcome, ExecSpec, Executor, LiveExecutor, LiveFaultPlan, LiveTuning,
    StealAmount,
};

macro_rules! fail {
    ($out:expr, $oracle:literal, $($fmt:tt)+) => {
        $out.push(Violation { oracle: $oracle, detail: format!($($fmt)+) })
    };
}

/// Deterministic, location-independent stand-in for region work: burns
/// time roughly proportional to the case's virtual cost and returns a
/// value derived only from the task id.
fn synthetic_work(task: u32, cost: u64) -> u64 {
    let mut x = u64::from(task).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xcbf2_9ce4_8422_2325;
    // ~1 spin per 500 virtual ns keeps a whole case under a millisecond
    let spins = (cost / 500).clamp(32, 4_096);
    for _ in 0..spins {
        x = x.rotate_left(13) ^ x.wrapping_mul(5);
    }
    x
}

fn run_live(spec: &CaseSpec) -> Result<ExecOutcome<u64>, ExecError> {
    let exec_spec = ExecSpec {
        n_tasks: spec.num_tasks(),
        costs: None,
        payloads: None,
        assignment: &spec.assignment,
        steal: spec.steal,
        seed: spec.sim_seed,
    };
    let costs = &spec.costs;
    LiveExecutor::new(spec.num_pes(), LiveTuning::default())
        .execute(&exec_spec, &|t| synthetic_work(t, costs[t as usize]))
}

/// As [`run_live`] with `plan` armed, through the resilient entry point:
/// injected panics, stragglers and grant drops fire, and the outcome must
/// still *complete* (the generator never dooms every worker), so the
/// completed results/report come back in [`ExecOutcome`] shape.
fn run_live_faulted(spec: &CaseSpec, plan: &LiveFaultPlan) -> Result<ExecOutcome<u64>, ExecError> {
    let exec_spec = ExecSpec {
        n_tasks: spec.num_tasks(),
        costs: None,
        payloads: None,
        assignment: &spec.assignment,
        steal: spec.steal,
        seed: spec.sim_seed,
    };
    let costs = &spec.costs;
    let out = LiveExecutor::new(spec.num_pes(), LiveTuning::default())
        .with_faults(plan.clone())
        .execute_resilient(&exec_spec, &|t| synthetic_work(t, costs[t as usize]))?;
    let (results, report) = out.into_complete()?;
    Ok(ExecOutcome { results, report })
}

/// Run `spec` on the live backend (twice) and check the live oracle
/// catalog. The case's fault plan and schedule hooks are DES-only and
/// ignored here — the OS supplies the schedule.
pub fn check_live_case(spec: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let first = match run_live(spec) {
        Err(e) => {
            out.push(Violation {
                oracle: "live_accepts_valid_input",
                detail: format!("live execute failed: {e} ({e:?})"),
            });
            return out;
        }
        Ok(o) => o,
    };
    exactly_once_live(spec, &first, &mut out);
    steal_accounting_live(spec, &first, &mut out);
    match run_live(spec) {
        Err(e) => fail!(out, "result_determinism", "second run failed: {e}"),
        Ok(second) => {
            if second.results != first.results {
                fail!(
                    out,
                    "result_determinism",
                    "two live runs of the same case returned different results"
                );
            }
        }
    }
    out
}

/// Run `spec` on the live backend with a deterministic fault `plan`
/// armed, alongside one fault-free baseline run, and check the faulted
/// oracle catalog:
///
/// - **live_fault_recovery** — the faulted run *completes* (the plan
///   generator never dooms every worker, so recovery must always
///   succeed) and its result vector is byte-identical to the fault-free
///   baseline — exactly-once execution under panics/stragglers/drops;
/// - **exactly_once_live** — as in the fault-free catalog (per-worker
///   counters still close: a dying worker never records the in-flight
///   task, and its completed work keeps its attribution);
/// - **steal_accounting_live_faulted** — `attempts = hits + misses`
///   stays exact (a dropped grant is a miss plus a retransmission), and
///   every off-owner execution is backed by a steal grant or a
///   recovered orphan;
/// - **crash_accounting_live** — recorded crashes never exceed the
///   distinct workers the plan dooms.
pub fn check_live_case_faulted(spec: &CaseSpec, plan: &LiveFaultPlan) -> Vec<Violation> {
    let mut out = Vec::new();
    let baseline = match run_live(spec) {
        Err(e) => {
            out.push(Violation {
                oracle: "live_accepts_valid_input",
                detail: format!("fault-free baseline failed: {e} ({e:?})"),
            });
            return out;
        }
        Ok(o) => o,
    };
    let faulted = match run_live_faulted(spec, plan) {
        Err(e) => {
            out.push(Violation {
                oracle: "live_fault_recovery",
                detail: format!("faulted run did not complete: {e} (plan {plan:?})"),
            });
            return out;
        }
        Ok(o) => o,
    };
    if faulted.results != baseline.results {
        fail!(
            out,
            "live_fault_recovery",
            "faulted results diverge from the fault-free baseline (plan {plan:?})"
        );
    }
    exactly_once_live(spec, &faulted, &mut out);
    steal_accounting_live_faulted(spec, &faulted, &mut out);
    let doomed: std::collections::HashSet<usize> = plan.panics.iter().map(|s| s.worker).collect();
    if faulted.report.resilience.crashes as usize > doomed.len() {
        fail!(
            out,
            "crash_accounting_live",
            "{} crashes recorded but the plan dooms only {} worker(s)",
            faulted.report.resilience.crashes,
            doomed.len()
        );
    }
    out
}

/// Every task executed exactly once by a real worker, and each worker's
/// execution counter matches the tasks it finally owns.
fn exactly_once_live(spec: &CaseSpec, outcome: &ExecOutcome<u64>, out: &mut Vec<Violation>) {
    let n = spec.num_tasks();
    let p = spec.num_pes();
    let report = &outcome.report;
    if outcome.results.len() != n || report.executed_by.len() != n {
        fail!(
            out,
            "exactly_once_live",
            "{} results / {} executed_by entries for {n} tasks",
            outcome.results.len(),
            report.executed_by.len()
        );
        return;
    }
    let mut owned = vec![0u32; p];
    for (task, &w) in report.executed_by.iter().enumerate() {
        if w as usize >= p {
            fail!(
                out,
                "exactly_once_live",
                "task {task} ran on bogus worker {w}"
            );
            return;
        }
        owned[w as usize] += 1;
    }
    let executed: u64 = report.per_pe_executed.iter().map(|&e| u64::from(e)).sum();
    if executed != n as u64 {
        fail!(
            out,
            "exactly_once_live",
            "{executed} executions recorded for {n} tasks"
        );
    }
    for (w, (&counted, &owns)) in report.per_pe_executed.iter().zip(&owned).enumerate() {
        if counted != owns {
            fail!(
                out,
                "exactly_once_live",
                "worker {w} counts {counted} executions but finally owns {owns} tasks"
            );
        }
    }
}

/// Steal-traffic bookkeeping closes on the live protocol: every request
/// is a grant or a denial, every off-owner execution is backed by a
/// transfer, batches respect the configured bound, and a static schedule
/// records no traffic at all.
fn steal_accounting_live(spec: &CaseSpec, outcome: &ExecOutcome<u64>, out: &mut Vec<Violation>) {
    let report = &outcome.report;
    if report.steal_attempts != report.steal_hits + report.steal_misses {
        fail!(
            out,
            "steal_accounting_live",
            "attempts {} != hits {} + misses {}",
            report.steal_attempts,
            report.steal_hits,
            report.steal_misses
        );
    }
    if spec.steal.is_none() && report.steal_attempts + report.tasks_transferred != 0 {
        fail!(
            out,
            "steal_accounting_live",
            "static schedule recorded steal traffic ({} attempts, {} transfers)",
            report.steal_attempts,
            report.tasks_transferred
        );
    }
    let stolen_exec: u64 = report
        .per_pe_stolen_executed
        .iter()
        .map(|&e| u64::from(e))
        .sum();
    // no faults live: every off-owner execution came from exactly one
    // transfer, and every transferred task executes off-owner
    if stolen_exec != report.tasks_transferred {
        fail!(
            out,
            "steal_accounting_live",
            "{stolen_exec} stolen executions but {} transfers",
            report.tasks_transferred
        );
    }
    if let Some(steal) = spec.steal {
        let max_batch = match steal.amount {
            StealAmount::One => 1,
            StealAmount::Fixed(k) => k as u64,
            StealAmount::Half => spec.num_tasks() as u64,
        };
        if report.tasks_transferred > report.steal_hits.saturating_mul(max_batch.max(1)) {
            fail!(
                out,
                "steal_accounting_live",
                "{} tasks moved by {} hits exceeds batch bound {max_batch}",
                report.tasks_transferred,
                report.steal_hits
            );
        }
    }
}

/// Steal bookkeeping under faults: the attempt ledger stays exact, and
/// every off-owner execution must be backed by a steal grant or a
/// recovery (`stolen_exec <= transferred + recovered`). The converse is
/// *not* a law: `tasks_transferred` counts every hop of a steal chain,
/// so a task re-stolen from a thief's queue — or stolen back to its
/// initial owner, which stragglers make likely — adds a transfer with no
/// off-owner execution. Batch bounds and the static-schedule
/// zero-traffic law are fault-free-only oracles and are not enforced
/// here.
fn steal_accounting_live_faulted(
    spec: &CaseSpec,
    outcome: &ExecOutcome<u64>,
    out: &mut Vec<Violation>,
) {
    let report = &outcome.report;
    if report.steal_attempts != report.steal_hits + report.steal_misses {
        fail!(
            out,
            "steal_accounting_live_faulted",
            "attempts {} != hits {} + misses {}",
            report.steal_attempts,
            report.steal_hits,
            report.steal_misses
        );
    }
    let stolen_exec: u64 = report
        .per_pe_stolen_executed
        .iter()
        .map(|&e| u64::from(e))
        .sum();
    let recovered = report.resilience.tasks_recovered;
    if stolen_exec > report.tasks_transferred + recovered {
        fail!(
            out,
            "steal_accounting_live_faulted",
            "{stolen_exec} stolen executions exceed {} transfers + {recovered} recovered",
            report.tasks_transferred
        );
    }
    if spec.steal.is_none() && recovered == 0 && report.steal_attempts != 0 {
        fail!(
            out,
            "steal_accounting_live_faulted",
            "static schedule with no recovery recorded {} steal attempts",
            report.steal_attempts
        );
    }
}

/// Sweep `runs` generator cases through the live oracles; returns the
/// failing `(seed, violations)` pairs (no shrinking — live schedules are
/// not replayable).
pub fn live_smoke(runs: u64, base_seed: u64) -> Vec<(u64, Vec<Violation>)> {
    let mut failures = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let spec = crate::gen::generate_case(seed);
        let violations = check_live_case(&spec);
        if !violations.is_empty() {
            failures.push((seed, violations));
        }
    }
    failures
}

/// As [`live_smoke`], but each case additionally runs under the
/// deterministic live fault plan derived from its seed
/// ([`crate::gen::generate_live_fault_plan`]) and must satisfy the
/// faulted oracle catalog ([`check_live_case_faulted`]): recovery always
/// completes, results match the fault-free baseline byte-for-byte, and
/// the steal/crash ledgers close.
pub fn live_smoke_faulted(runs: u64, base_seed: u64) -> Vec<(u64, Vec<Violation>)> {
    let mut failures = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let spec = crate::gen::generate_case(seed);
        let plan = crate::gen::generate_live_fault_plan(seed, spec.num_pes());
        let violations = check_live_case_faulted(&spec, &plan);
        if !violations.is_empty() {
            failures.push((seed, violations));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_pass_the_live_oracles() {
        let failures = live_smoke(25, 0xC0FFEE);
        assert!(
            failures.is_empty(),
            "live smoke failures: {:?}",
            failures
                .iter()
                .map(|(s, v)| format!("seed {s}: {v:?}"))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn generated_cases_pass_the_faulted_live_oracles() {
        let failures = live_smoke_faulted(25, 0xFA_017);
        assert!(
            failures.is_empty(),
            "faulted live smoke failures: {:?}",
            failures
                .iter()
                .map(|(s, v)| format!("seed {s}: {v:?}"))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn a_targeted_panic_is_recovered_in_the_smoke_harness() {
        // p = 2, everything on worker 0, worker 1 dies on its first steal
        let spec = crate::gen::generate_case(3); // any case shape works …
        let p = spec.num_pes();
        if p < 2 {
            return; // … but panics need a survivor
        }
        let plan = LiveFaultPlan::new(9).with_panic(p - 1, 0);
        let violations = check_live_case_faulted(&spec, &plan);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn synthetic_work_is_pure() {
        assert_eq!(synthetic_work(7, 10_000), synthetic_work(7, 10_000));
        assert_ne!(synthetic_work(7, 10_000), synthetic_work(8, 10_000));
    }
}
