//! Live-backend smoke oracles: the invariant catalog applied to the real
//! shared-memory executor.
//!
//! The DES fuzzer explores virtual-time schedules deterministically; the
//! live backend's schedules come from the OS, so they cannot be replayed
//! or shrunk. What *can* be checked on every run (DESIGN.md §12):
//!
//! - **exactly_once_live** — every task executed exactly once by a real
//!   worker, and per-worker counters match final ownership;
//! - **steal_accounting_live** — attempts = hits + misses, stolen
//!   executions are backed by transfers, batch bounds hold, and a static
//!   schedule produces zero steal traffic;
//! - **result_determinism** — two runs of the same case (racing their
//!   steals differently) return byte-identical result vectors.
//!
//! Cases are borrowed from the DES fuzzer's generator, so the live smoke
//! sweeps the same space of shapes (imbalanced queues, empty PEs, every
//! victim policy and steal amount); costs drive a synthetic spin so the
//! schedule actually contends.

use crate::case::CaseSpec;
use crate::oracles::Violation;
use smp_runtime::{ExecOutcome, ExecSpec, Executor, LiveExecutor, LiveTuning, StealAmount};

macro_rules! fail {
    ($out:expr, $oracle:literal, $($fmt:tt)+) => {
        $out.push(Violation { oracle: $oracle, detail: format!($($fmt)+) })
    };
}

/// Deterministic, location-independent stand-in for region work: burns
/// time roughly proportional to the case's virtual cost and returns a
/// value derived only from the task id.
fn synthetic_work(task: u32, cost: u64) -> u64 {
    let mut x = u64::from(task).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xcbf2_9ce4_8422_2325;
    // ~1 spin per 500 virtual ns keeps a whole case under a millisecond
    let spins = (cost / 500).clamp(32, 4_096);
    for _ in 0..spins {
        x = x.rotate_left(13) ^ x.wrapping_mul(5);
    }
    x
}

fn run_live(spec: &CaseSpec) -> Result<ExecOutcome<u64>, smp_runtime::SimError> {
    let exec_spec = ExecSpec {
        n_tasks: spec.num_tasks(),
        costs: None,
        payloads: None,
        assignment: &spec.assignment,
        steal: spec.steal,
        seed: spec.sim_seed,
    };
    let costs = &spec.costs;
    LiveExecutor::new(spec.num_pes(), LiveTuning::default())
        .execute(&exec_spec, &|t| synthetic_work(t, costs[t as usize]))
}

/// Run `spec` on the live backend (twice) and check the live oracle
/// catalog. The case's fault plan and schedule hooks are DES-only and
/// ignored here — the OS supplies the schedule.
pub fn check_live_case(spec: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let first = match run_live(spec) {
        Err(e) => {
            out.push(Violation {
                oracle: "live_accepts_valid_input",
                detail: format!("live execute failed: {e} ({e:?})"),
            });
            return out;
        }
        Ok(o) => o,
    };
    exactly_once_live(spec, &first, &mut out);
    steal_accounting_live(spec, &first, &mut out);
    match run_live(spec) {
        Err(e) => fail!(out, "result_determinism", "second run failed: {e}"),
        Ok(second) => {
            if second.results != first.results {
                fail!(
                    out,
                    "result_determinism",
                    "two live runs of the same case returned different results"
                );
            }
        }
    }
    out
}

/// Every task executed exactly once by a real worker, and each worker's
/// execution counter matches the tasks it finally owns.
fn exactly_once_live(spec: &CaseSpec, outcome: &ExecOutcome<u64>, out: &mut Vec<Violation>) {
    let n = spec.num_tasks();
    let p = spec.num_pes();
    let report = &outcome.report;
    if outcome.results.len() != n || report.executed_by.len() != n {
        fail!(
            out,
            "exactly_once_live",
            "{} results / {} executed_by entries for {n} tasks",
            outcome.results.len(),
            report.executed_by.len()
        );
        return;
    }
    let mut owned = vec![0u32; p];
    for (task, &w) in report.executed_by.iter().enumerate() {
        if w as usize >= p {
            fail!(
                out,
                "exactly_once_live",
                "task {task} ran on bogus worker {w}"
            );
            return;
        }
        owned[w as usize] += 1;
    }
    let executed: u64 = report.per_pe_executed.iter().map(|&e| u64::from(e)).sum();
    if executed != n as u64 {
        fail!(
            out,
            "exactly_once_live",
            "{executed} executions recorded for {n} tasks"
        );
    }
    for (w, (&counted, &owns)) in report.per_pe_executed.iter().zip(&owned).enumerate() {
        if counted != owns {
            fail!(
                out,
                "exactly_once_live",
                "worker {w} counts {counted} executions but finally owns {owns} tasks"
            );
        }
    }
}

/// Steal-traffic bookkeeping closes on the live protocol: every request
/// is a grant or a denial, every off-owner execution is backed by a
/// transfer, batches respect the configured bound, and a static schedule
/// records no traffic at all.
fn steal_accounting_live(spec: &CaseSpec, outcome: &ExecOutcome<u64>, out: &mut Vec<Violation>) {
    let report = &outcome.report;
    if report.steal_attempts != report.steal_hits + report.steal_misses {
        fail!(
            out,
            "steal_accounting_live",
            "attempts {} != hits {} + misses {}",
            report.steal_attempts,
            report.steal_hits,
            report.steal_misses
        );
    }
    if spec.steal.is_none() && report.steal_attempts + report.tasks_transferred != 0 {
        fail!(
            out,
            "steal_accounting_live",
            "static schedule recorded steal traffic ({} attempts, {} transfers)",
            report.steal_attempts,
            report.tasks_transferred
        );
    }
    let stolen_exec: u64 = report
        .per_pe_stolen_executed
        .iter()
        .map(|&e| u64::from(e))
        .sum();
    // no faults live: every off-owner execution came from exactly one
    // transfer, and every transferred task executes off-owner
    if stolen_exec != report.tasks_transferred {
        fail!(
            out,
            "steal_accounting_live",
            "{stolen_exec} stolen executions but {} transfers",
            report.tasks_transferred
        );
    }
    if let Some(steal) = spec.steal {
        let max_batch = match steal.amount {
            StealAmount::One => 1,
            StealAmount::Fixed(k) => k as u64,
            StealAmount::Half => spec.num_tasks() as u64,
        };
        if report.tasks_transferred > report.steal_hits.saturating_mul(max_batch.max(1)) {
            fail!(
                out,
                "steal_accounting_live",
                "{} tasks moved by {} hits exceeds batch bound {max_batch}",
                report.tasks_transferred,
                report.steal_hits
            );
        }
    }
}

/// Sweep `runs` generator cases through the live oracles; returns the
/// failing `(seed, violations)` pairs (no shrinking — live schedules are
/// not replayable).
pub fn live_smoke(runs: u64, base_seed: u64) -> Vec<(u64, Vec<Violation>)> {
    let mut failures = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let spec = crate::gen::generate_case(seed);
        let violations = check_live_case(&spec);
        if !violations.is_empty() {
            failures.push((seed, violations));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_pass_the_live_oracles() {
        let failures = live_smoke(25, 0xC0FFEE);
        assert!(
            failures.is_empty(),
            "live smoke failures: {:?}",
            failures
                .iter()
                .map(|(s, v)| format!("seed {s}: {v:?}"))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn synthetic_work_is_pure() {
        assert_eq!(synthetic_work(7, 10_000), synthetic_work(7, 10_000));
        assert_ne!(synthetic_work(7, 10_000), synthetic_work(8, 10_000));
    }
}
