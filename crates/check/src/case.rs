//! One fully-explicit fuzz case: workload, placement, runtime config,
//! fault plan, and schedule perturbation.
//!
//! A case is *data*, not a generator state: the shrinker edits it
//! structurally (drop tasks, remove faults, merge PEs) and the repro
//! format serializes it losslessly, so a failing case replays bit for bit
//! anywhere.

use smp_runtime::{
    simulate_explored, FaultPlan, MachineModel, Quiescence, SeededSchedule, SimConfig, SimError,
    SimReport, StealConfig,
};

/// Which virtual machine model the case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    Hopper,
    Opteron,
}

impl MachineKind {
    pub fn model(&self) -> MachineModel {
        match self {
            MachineKind::Hopper => MachineModel::hopper(),
            MachineKind::Opteron => MachineModel::opteron(),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            MachineKind::Hopper => "hopper",
            MachineKind::Opteron => "opteron",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hopper" => Some(MachineKind::Hopper),
            "opteron" => Some(MachineKind::Opteron),
            _ => None,
        }
    }
}

/// The schedule-exploration half of a case: FIFO is the canonical order
/// every golden file pins; `Seeded(s)` is the deterministic perturbation
/// of equal-time event delivery explored by the fuzzer. The seed *is* the
/// schedule trace — replaying it reproduces the exact interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePlan {
    Fifo,
    Seeded(u64),
}

/// A complete, self-contained fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Virtual cost of each task.
    pub costs: Vec<u64>,
    /// Initial queue of each PE; every task id appears exactly once.
    pub assignment: Vec<Vec<u32>>,
    pub machine: MachineKind,
    /// `None` = static schedule (no load balancing).
    pub steal: Option<StealConfig>,
    /// Victim-selection RNG seed ([`SimConfig::seed`]).
    pub sim_seed: u64,
    pub fault: FaultPlan,
    pub schedule: SchedulePlan,
}

impl CaseSpec {
    pub fn num_tasks(&self) -> usize {
        self.costs.len()
    }

    pub fn num_pes(&self) -> usize {
        self.assignment.len()
    }

    /// Rough structural size, used by the shrinker to rank candidates:
    /// tasks + PEs + fault-plan entries.
    pub fn size(&self) -> usize {
        self.costs.len()
            + self.assignment.len()
            + self.fault.stragglers.len()
            + self.fault.crashes.len()
            + self.fault.drop_seqs.len()
            + self.fault.jitter_seqs.len()
            + usize::from(self.fault.msg_loss > 0.0)
            + usize::from(self.fault.msg_jitter > 0.0)
            + usize::from(!matches!(self.schedule, SchedulePlan::Fifo))
    }

    /// Execute the case deterministically.
    pub fn run(&self) -> Result<(SimReport, Quiescence), SimError> {
        let cfg = SimConfig {
            machine: self.machine.model(),
            steal: self.steal,
            seed: self.sim_seed,
        };
        let fault = if self.fault.is_zero() {
            None
        } else {
            Some(&self.fault)
        };
        let mut seeded;
        let oracle: Option<&mut dyn smp_runtime::ScheduleOracle> = match self.schedule {
            SchedulePlan::Fifo => None,
            SchedulePlan::Seeded(seed) => {
                seeded = SeededSchedule { seed };
                Some(&mut seeded)
            }
        };
        simulate_explored(
            &self.costs,
            None,
            &self.assignment,
            &cfg,
            fault,
            None,
            oracle,
        )
    }
}
