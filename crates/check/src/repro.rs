//! The replay-file format.
//!
//! A shrunk failure serializes to a small, line-oriented text file that
//! `smp-check --replay` and `probe --replay` re-execute deterministically.
//! The format is versioned, order-insensitive past the header, and
//! self-describing (DESIGN.md §10):
//!
//! ```text
//! smp-check-repro v1
//! # free-text context lines
//! machine hopper
//! sim_seed 42
//! schedule seeded 17
//! steal randk 8 one
//! costs 100 200 300
//! queue 0 2
//! queue 1
//! fault_seed 7
//! msg_loss 0.25
//! msg_jitter 0.1 50000
//! straggler 0 0 1000000 4.0
//! crash 2 300000
//! drop 17
//! delay 9 4000
//! ```
//!
//! One `queue` line per PE (possibly empty); every other fault line is
//! optional. Floats round-trip through Rust's shortest-representation
//! formatting, so parse(serialize(c)) == c exactly.

use crate::case::{CaseSpec, MachineKind, SchedulePlan};
use smp_runtime::{FaultPlan, StealAmount, StealConfig, StealPolicyKind};

const HEADER: &str = "smp-check-repro v1";

/// Serialize a case (plus optional context comment lines).
pub fn serialize(spec: &CaseSpec, context: &[String]) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for line in context {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!("machine {}\n", spec.machine.name()));
    out.push_str(&format!("sim_seed {}\n", spec.sim_seed));
    match spec.schedule {
        SchedulePlan::Fifo => out.push_str("schedule fifo\n"),
        SchedulePlan::Seeded(s) => out.push_str(&format!("schedule seeded {s}\n")),
    }
    match spec.steal {
        None => out.push_str("steal none\n"),
        Some(cfg) => {
            let policy = match cfg.policy {
                StealPolicyKind::RandK(k) => format!("randk {k}"),
                StealPolicyKind::Diffusive => "diffusive".to_string(),
                StealPolicyKind::DiffusiveAdaptive => "diffusive-ca".to_string(),
                StealPolicyKind::Hybrid(k) => format!("hybrid {k}"),
                StealPolicyKind::Lifeline => "lifeline".to_string(),
            };
            let amount = match cfg.amount {
                StealAmount::One => "one".to_string(),
                StealAmount::Half => "half".to_string(),
                StealAmount::Fixed(k) => format!("fixed {k}"),
            };
            out.push_str(&format!("steal {policy} {amount}\n"));
        }
    }
    out.push_str("costs");
    for c in &spec.costs {
        out.push_str(&format!(" {c}"));
    }
    out.push('\n');
    for q in &spec.assignment {
        out.push_str("queue");
        for t in q {
            out.push_str(&format!(" {t}"));
        }
        out.push('\n');
    }
    let f = &spec.fault;
    out.push_str(&format!("fault_seed {}\n", f.seed));
    if f.msg_loss > 0.0 {
        out.push_str(&format!("msg_loss {}\n", f.msg_loss));
    }
    if f.msg_jitter > 0.0 {
        out.push_str(&format!("msg_jitter {} {}\n", f.msg_jitter, f.jitter_max));
    }
    for s in &f.stragglers {
        out.push_str(&format!(
            "straggler {} {} {} {}\n",
            s.pe, s.from, s.until, s.factor
        ));
    }
    for c in &f.crashes {
        out.push_str(&format!("crash {} {}\n", c.pe, c.at));
    }
    for &s in &f.drop_seqs {
        out.push_str(&format!("drop {s}\n"));
    }
    for &(s, extra) in &f.jitter_seqs {
        out.push_str(&format!("delay {s} {extra}\n"));
    }
    out
}

/// Parse a replay file. Errors carry the offending line.
pub fn parse(text: &str) -> Result<CaseSpec, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty replay file")?.trim();
    if header != HEADER {
        return Err(format!("bad header {header:?}, expected {HEADER:?}"));
    }
    let mut machine = None;
    let mut sim_seed = None;
    let mut schedule = None;
    let mut steal: Option<Option<StealConfig>> = None;
    let mut costs: Option<Vec<u64>> = None;
    let mut queues: Vec<Vec<u32>> = Vec::new();
    let mut fault = FaultPlan::new(0);

    for raw in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let key = it.next().ok_or_else(|| format!("blank key in {line:?}"))?;
        let rest: Vec<&str> = it.collect();
        let num = |i: usize, what: &str| -> Result<u64, String> {
            rest.get(i)
                .ok_or_else(|| format!("{line:?}: missing {what}"))?
                .parse::<u64>()
                .map_err(|e| format!("{line:?}: bad {what}: {e}"))
        };
        let flt = |i: usize, what: &str| -> Result<f64, String> {
            rest.get(i)
                .ok_or_else(|| format!("{line:?}: missing {what}"))?
                .parse::<f64>()
                .map_err(|e| format!("{line:?}: bad {what}: {e}"))
        };
        match key {
            "machine" => {
                let name = rest
                    .first()
                    .ok_or_else(|| format!("{line:?}: no machine"))?;
                machine = Some(
                    MachineKind::parse(name)
                        .ok_or_else(|| format!("{line:?}: unknown machine {name:?}"))?,
                );
            }
            "sim_seed" => sim_seed = Some(num(0, "seed")?),
            "schedule" => {
                schedule = Some(match rest.first().copied() {
                    Some("fifo") => SchedulePlan::Fifo,
                    Some("seeded") => SchedulePlan::Seeded(num(1, "schedule seed")?),
                    other => return Err(format!("{line:?}: unknown schedule {other:?}")),
                });
            }
            "steal" => {
                steal = Some(match rest.first().copied() {
                    Some("none") => None,
                    Some(kind) => {
                        let (policy, amount_at) = match kind {
                            "randk" => (StealPolicyKind::RandK(num(1, "k")? as usize), 2),
                            "hybrid" => (StealPolicyKind::Hybrid(num(1, "k")? as usize), 2),
                            "diffusive" => (StealPolicyKind::Diffusive, 1),
                            "diffusive-ca" => (StealPolicyKind::DiffusiveAdaptive, 1),
                            "lifeline" => (StealPolicyKind::Lifeline, 1),
                            _ => return Err(format!("{line:?}: unknown policy {kind:?}")),
                        };
                        let amount = match rest.get(amount_at).copied() {
                            Some("one") => StealAmount::One,
                            Some("half") => StealAmount::Half,
                            Some("fixed") => {
                                StealAmount::Fixed(num(amount_at + 1, "fixed amount")? as usize)
                            }
                            other => return Err(format!("{line:?}: unknown amount {other:?}")),
                        };
                        Some(StealConfig { policy, amount })
                    }
                    None => return Err(format!("{line:?}: empty steal")),
                });
            }
            "costs" => {
                costs = Some(
                    rest.iter()
                        .map(|c| {
                            c.parse::<u64>()
                                .map_err(|e| format!("{line:?}: bad cost {c:?}: {e}"))
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            "queue" => {
                queues.push(
                    rest.iter()
                        .map(|t| {
                            t.parse::<u32>()
                                .map_err(|e| format!("{line:?}: bad task {t:?}: {e}"))
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            "fault_seed" => fault.seed = num(0, "fault seed")?,
            "msg_loss" => fault.msg_loss = flt(0, "loss rate")?,
            "msg_jitter" => {
                fault.msg_jitter = flt(0, "jitter rate")?;
                fault.jitter_max = num(1, "jitter max")?;
            }
            "straggler" => {
                fault = fault.with_straggler(
                    num(0, "pe")? as usize,
                    num(1, "from")?,
                    num(2, "until")?,
                    flt(3, "factor")?,
                );
            }
            "crash" => fault = fault.with_crash(num(0, "pe")? as usize, num(1, "at")?),
            "drop" => fault = fault.with_dropped_message(num(0, "seq")?),
            "delay" => fault = fault.with_delayed_message(num(0, "seq")?, num(1, "extra")?),
            _ => return Err(format!("unknown key {key:?} in {line:?}")),
        }
    }

    let spec = CaseSpec {
        costs: costs.ok_or("missing costs line")?,
        assignment: queues,
        machine: machine.ok_or("missing machine line")?,
        steal: steal.ok_or("missing steal line")?,
        sim_seed: sim_seed.ok_or("missing sim_seed line")?,
        fault,
        schedule: schedule.ok_or("missing schedule line")?,
    };
    if spec.assignment.is_empty() {
        return Err("missing queue lines (need at least one PE)".to_string());
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    #[test]
    fn round_trips_exactly() {
        for seed in 0..120 {
            let case = generate_case(seed);
            let text = serialize(&case, &["context".to_string()]);
            let back = parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(case, back, "seed {seed} did not round-trip");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("not-a-repro").is_err());
        assert!(parse("smp-check-repro v1\nmachine pdp11\n").is_err());
        assert!(
            parse("smp-check-repro v1\nmachine hopper\n").is_err(),
            "missing fields"
        );
        let text = "smp-check-repro v1\nmachine hopper\nsim_seed 1\nschedule fifo\nsteal none\ncosts 5\nqueue 0\nbogus 1\n";
        assert!(parse(text).is_err(), "unknown key must be rejected");
    }
}
