//! The fuzz loop: generate → run → check → shrink → serialize.

use crate::case::CaseSpec;
use crate::gen::generate_case;
use crate::oracles::{check_case, Violation};
use crate::repro;
use crate::shrink::shrink;
use std::path::{Path, PathBuf};

/// Knobs for one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of randomized cases to run.
    pub runs: u64,
    /// First case seed; case `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Where shrunk repro files land (created on demand). `None` keeps
    /// failures in memory only.
    pub out_dir: Option<PathBuf>,
    /// Stop the campaign at the first failure instead of completing all
    /// runs.
    pub fail_fast: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            runs: 1000,
            base_seed: 0,
            out_dir: None,
            fail_fast: false,
        }
    }
}

/// One shrunk failure.
#[derive(Debug)]
pub struct Failure {
    /// Generator seed that produced the original failing case.
    pub seed: u64,
    /// Locally-minimal failing case.
    pub shrunk: CaseSpec,
    /// Violations the shrunk case still triggers.
    pub violations: Vec<Violation>,
    /// Repro file written for this failure, if an out dir was given.
    pub repro_path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Debug)]
pub struct FuzzOutcome {
    pub runs_executed: u64,
    pub failures: Vec<Failure>,
}

impl FuzzOutcome {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `cfg.runs` randomized cases; shrink and (optionally) serialize
/// every failure. `progress` is called after each run with
/// `(done, total, failures_so_far)`.
pub fn fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(u64, u64, usize)) -> FuzzOutcome {
    let mut failures = Vec::new();
    let mut runs_executed = 0;
    for i in 0..cfg.runs {
        let seed = cfg.base_seed.wrapping_add(i);
        let spec = generate_case(seed);
        let violations = check_case(&spec);
        runs_executed += 1;
        if !violations.is_empty() {
            failures.push(report_failure(cfg, seed, &spec, violations));
            if cfg.fail_fast {
                break;
            }
        }
        progress(runs_executed, cfg.runs, failures.len());
    }
    FuzzOutcome {
        runs_executed,
        failures,
    }
}

/// Check one already-built case (the `--replay` path).
pub fn check_replay(spec: &CaseSpec) -> Vec<Violation> {
    check_case(spec)
}

fn report_failure(
    cfg: &FuzzConfig,
    seed: u64,
    spec: &CaseSpec,
    original: Vec<Violation>,
) -> Failure {
    let (shrunk, violations) = shrink(spec);
    // shrinking keeps *a* failure, not necessarily the same oracle; fall
    // back to the original case if a probe raced it away entirely
    let (shrunk, violations) = if violations.is_empty() {
        (spec.clone(), original)
    } else {
        (shrunk, violations)
    };
    let repro_path = cfg.out_dir.as_ref().and_then(|dir| {
        write_repro(dir, seed, &shrunk, &violations)
            .map_err(|e| eprintln!("smp-check: cannot write repro for seed {seed}: {e}"))
            .ok()
    });
    Failure {
        seed,
        shrunk,
        violations,
        repro_path,
    }
}

fn write_repro(
    dir: &Path,
    seed: u64,
    spec: &CaseSpec,
    violations: &[Violation],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut context = vec![format!("generator seed {seed}")];
    context.extend(violations.iter().map(|v| v.to_string()));
    let text = repro::serialize(spec, &context);
    let path = dir.join(format!("repro-{seed}.txt"));
    std::fs::write(&path, text)?;
    Ok(path)
}

// the canary build plants a real bug, so the clean-campaign check only
// holds in a normal build
#[cfg(all(test, not(smp_check_canary)))]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean() {
        // the real 1000-run campaign is the CI job and the binary's
        // default; this keeps `cargo test` fast while still exercising
        // the full loop
        let cfg = FuzzConfig {
            runs: 40,
            base_seed: 7_000,
            out_dir: None,
            fail_fast: false,
        };
        let outcome = fuzz(&cfg, |_, _, _| {});
        assert_eq!(outcome.runs_executed, 40);
        if let Some(f) = outcome.failures.first() {
            panic!(
                "seed {} violated: {}",
                f.seed,
                f.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
}
