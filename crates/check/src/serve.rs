//! Serve smoke oracles: randomized planning-as-a-service workloads
//! checked against the request-conservation ledger and the
//! batched-equals-sequential determinism contract.
//!
//! The serving layer (DESIGN.md §15) promises that batching, the
//! backend, and the thread count change only *scheduling*: the set of
//! answers — and each answer's bytes — is a pure function of the
//! admitted request set. This module sweeps that contract over generated
//! workloads with mixed tenant classes, unknown keys, shared snapshot
//! keys, arrival bursts, and logical-deadline pressure:
//!
//! - **conservation** — admitted = completed + rejected + expired, one
//!   record per admission, no request lost or answered twice;
//! - **determinism_des** — two batched DES runs are byte-identical;
//! - **differential_modes** — the batched run's answers digest equals a
//!   sequential one-at-a-time replay;
//! - **differential_backends** — the live shared-memory backend returns
//!   the same answers digest as the DES;
//! - **snapshot_reuse** — every request on the same `(env, robot)` key
//!   is answered against the same roadmap digest;
//! - **expiry_exact** — a request expires iff its deterministic service
//!   index exceeds its logical deadline (settled, never dropped).
//!
//! Failures shrink greedily to a locally-minimal workload and serialize
//! to a line-oriented `smp-serve-repro v1` file that
//! `smp-check --replay` re-executes deterministically.
//!
//! Run it: `cargo run -p smp-check -- --serve-smoke 200`.

use crate::oracles::Violation;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use smp_geom::Point;
use smp_runtime::{Backend, LiveTuning};
use smp_serve::{
    PlanRequest, QueryClass, ServeConfig, ServeOutcome, ServeReport, Server, SnapshotParams,
};

macro_rules! fail {
    ($out:expr, $oracle:literal, $($fmt:tt)+) => {
        $out.push(Violation { oracle: $oracle, detail: format!($($fmt)+) })
    };
}

/// One generated request, as compact selectors (resolved by
/// [`request_of`]) so repro files stay small and version-stable.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCaseRequest {
    /// Environment selector (`% 4`: two `free`, one `small_cube`, one
    /// unknown key).
    pub env_sel: u8,
    /// Robot selector (`% 3`: `point`, `probe`, unknown key).
    pub robot_sel: u8,
    /// Batch class (else interactive).
    pub batch: bool,
    /// Logical service-index deadline.
    pub deadline: Option<u64>,
    /// Start coordinate (splatted).
    pub start: f64,
    /// Goal coordinate (splatted).
    pub goal: f64,
    /// Virtual arrival time in ns.
    pub arrival_ns: u64,
}

/// One generated serve workload: requests plus server shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCase {
    /// The admitted requests, in admission order.
    pub requests: Vec<ServeCaseRequest>,
    /// Worker threads for batched runs.
    pub threads: usize,
    /// Batch size cap.
    pub batch_max: usize,
    /// Snapshot-cache capacity.
    pub cache_capacity: usize,
    /// Scheduling seed (answers must not depend on it).
    pub seed: u64,
}

/// Resolve one descriptor into a [`PlanRequest`].
pub fn request_of(r: &ServeCaseRequest) -> PlanRequest {
    let env = match r.env_sel % 4 {
        0 | 1 => "free",
        2 => "small_cube",
        _ => "no-such-env",
    };
    let robot = match r.robot_sel % 3 {
        0 => "point",
        1 => "probe",
        _ => "no-such-robot",
    };
    PlanRequest {
        deadline: r.deadline,
        class: if r.batch {
            QueryClass::Batch
        } else {
            QueryClass::Interactive
        },
        arrival_ns: r.arrival_ns,
        ..PlanRequest::new(env, robot, Point::splat(r.start), Point::splat(r.goal))
    }
}

/// Generate a random serve case from `seed`: 1–20 requests with mixed
/// tenant classes, bursty monotone arrivals, ~1/3 carrying a tight
/// logical deadline, on 1–4 threads with small batch and cache caps.
pub fn generate_serve_case(seed: u64) -> ServeCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E21_CA5E);
    let n = rng.random_range(1usize..21);
    let mut arrival = 0u64;
    let mut requests = Vec::with_capacity(n);
    for _ in 0..n {
        // Bursts: half the requests arrive together with the previous one.
        if rng.random_range(0u32..2) == 0 {
            arrival += rng.random_range(0u64..500_000);
        }
        let deadline = if rng.random_range(0u32..3) == 0 {
            // Deadline pressure: bound near the workload size so some
            // requests expire and some squeak through.
            Some(rng.random_range(0u64..(n as u64 + 2)))
        } else {
            None
        };
        requests.push(ServeCaseRequest {
            env_sel: rng.random_range(0u8..8),
            robot_sel: rng.random_range(0u8..8),
            batch: rng.random_range(0u32..2) == 0,
            deadline,
            start: rng.random_range(0.05f64..0.95),
            goal: rng.random_range(0.05f64..0.95),
            arrival_ns: arrival,
        });
    }
    ServeCase {
        requests,
        threads: rng.random_range(1usize..5),
        batch_max: rng.random_range(1usize..6),
        cache_capacity: rng.random_range(1usize..3),
        seed: rng.next_u64(),
    }
}

/// A fresh server for `case` on `backend`, with a tiny snapshot build so
/// each smoke case costs milliseconds.
fn server_for(case: &ServeCase, backend: Backend) -> Server {
    Server::new(ServeConfig {
        backend,
        threads: case.threads,
        batch_max: case.batch_max,
        cache_capacity: case.cache_capacity,
        snapshot: SnapshotParams {
            regions_target: 8,
            attempts_per_region: 2,
            ..SnapshotParams::default()
        },
        seed: case.seed,
        ..ServeConfig::default()
    })
}

fn run_case(case: &ServeCase, backend: Backend, sequential: bool) -> Result<ServeReport, String> {
    let mut server = server_for(case, backend);
    for r in &case.requests {
        server.submit(request_of(r));
    }
    let res = if sequential {
        server.run_sequential()
    } else {
        server.run()
    };
    res.map_err(|e| e.to_string())
}

/// Run every serve oracle on one case.
pub fn check_serve_case(case: &ServeCase) -> Vec<Violation> {
    let mut out = Vec::new();

    let des = match run_case(case, Backend::Des, false) {
        Ok(r) => r,
        Err(e) => {
            fail!(out, "conservation", "batched DES run failed: {e}");
            return out;
        }
    };
    for v in des.conservation_violations() {
        fail!(out, "conservation", "{v}");
    }
    if des.ledger.admitted != case.requests.len() as u64 {
        fail!(
            out,
            "conservation",
            "ledger admitted {} != {} submitted",
            des.ledger.admitted,
            case.requests.len()
        );
    }

    match run_case(case, Backend::Des, false) {
        Ok(des2) => {
            if des2.answers_digest != des.answers_digest || des2.records != des.records {
                fail!(
                    out,
                    "determinism_des",
                    "two batched DES runs disagree: {:#018x} vs {:#018x}",
                    des.answers_digest,
                    des2.answers_digest
                );
            }
        }
        Err(e) => fail!(out, "determinism_des", "second DES run failed: {e}"),
    }

    match run_case(case, Backend::Des, true) {
        Ok(seq) => {
            if seq.answers_digest != des.answers_digest {
                fail!(
                    out,
                    "differential_modes",
                    "batched {:#018x} != sequential replay {:#018x}",
                    des.answers_digest,
                    seq.answers_digest
                );
            }
            if seq.ledger != des.ledger {
                fail!(
                    out,
                    "differential_modes",
                    "batched ledger {:?} != sequential ledger {:?}",
                    des.ledger,
                    seq.ledger
                );
            }
        }
        Err(e) => fail!(out, "differential_modes", "sequential replay failed: {e}"),
    }

    match run_case(case, Backend::Live(LiveTuning::default()), false) {
        Ok(live) => {
            if live.answers_digest != des.answers_digest {
                fail!(
                    out,
                    "differential_backends",
                    "live {:#018x} != DES {:#018x}",
                    live.answers_digest,
                    des.answers_digest
                );
            }
        }
        Err(e) => fail!(out, "differential_backends", "live run failed: {e}"),
    }

    // Snapshot reuse: one roadmap digest per (env, robot) key.
    let mut by_key: std::collections::HashMap<(String, String), u64> =
        std::collections::HashMap::new();
    for rec in &des.records {
        let Some(digest) = rec.snapshot_digest else {
            continue;
        };
        let req = &case.requests[rec.seq as usize];
        let plan = request_of(req);
        match by_key.entry((plan.env_key.clone(), plan.robot_key.clone())) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(digest);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != digest {
                    fail!(
                        out,
                        "snapshot_reuse",
                        "key {}/{} answered against two roadmaps: {:#018x} vs {:#018x}",
                        plan.env_key,
                        plan.robot_key,
                        e.get(),
                        digest
                    );
                }
            }
        }
    }

    // Expiry is exact and settled: recompute the deterministic service
    // order from first principles.
    let mut by_service: Vec<(u64, &ServeCaseRequest, QueryClass)> = case
        .requests
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u64, r, request_of(r).class))
        .collect();
    by_service.sort_by_key(|&(seq, _, class)| (class, seq));
    for (service_index, &(seq, r, _)) in by_service.iter().enumerate() {
        let should_expire = r.deadline.is_some_and(|d| service_index as u64 > d);
        match des.records.iter().find(|rec| rec.seq == seq) {
            Some(rec) => {
                let expired = matches!(rec.outcome, ServeOutcome::Expired);
                if expired != should_expire {
                    fail!(
                        out,
                        "expiry_exact",
                        "seq {seq} at service index {service_index} deadline {:?}: expired={expired}, expected {should_expire}",
                        r.deadline
                    );
                }
            }
            None => fail!(out, "expiry_exact", "seq {seq} has no record (dropped)"),
        }
    }

    out
}

/// Greedily shrink a failing case: drop requests one at a time, then
/// flatten the server shape, keeping every change under which `fails`
/// still returns true. The result is locally minimal.
pub fn shrink_serve_case<F: Fn(&ServeCase) -> bool>(case: &ServeCase, fails: F) -> ServeCase {
    let mut best = case.clone();
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.requests.len() {
            let mut candidate = best.clone();
            candidate.requests.remove(i);
            if fails(&candidate) {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        // Each flattening candidate must derive from the *current* best:
        // deriving all three from the loop-entry best lets a stale
        // candidate undo an accepted one and oscillate forever.
        type Flatten = fn(&ServeCase) -> ServeCase;
        let flattens: [Flatten; 3] = [
            |c| ServeCase {
                threads: 1,
                ..c.clone()
            },
            |c| ServeCase {
                batch_max: 1,
                ..c.clone()
            },
            |c| ServeCase {
                cache_capacity: 1,
                ..c.clone()
            },
        ];
        for f in flattens {
            let candidate = f(&best);
            if candidate != best && fails(&candidate) {
                best = candidate;
                improved = true;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Serialize a case to the line-oriented `smp-serve-repro v1` format.
pub fn serialize_serve(case: &ServeCase) -> String {
    let mut s = String::from("smp-serve-repro v1\n");
    s.push_str(&format!(
        "config {} {} {} {}\n",
        case.threads, case.batch_max, case.cache_capacity, case.seed
    ));
    for r in &case.requests {
        let deadline = r
            .deadline
            .map_or_else(|| "-".to_string(), |d| d.to_string());
        s.push_str(&format!(
            "request {} {} {} {} {:#018x} {:#018x} {}\n",
            r.env_sel,
            r.robot_sel,
            u8::from(r.batch),
            deadline,
            r.start.to_bits(),
            r.goal.to_bits(),
            r.arrival_ns
        ));
    }
    s
}

/// Parse an `smp-serve-repro v1` file (inverse of [`serialize_serve`]).
pub fn parse_serve(text: &str) -> Result<ServeCase, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty repro file")?;
    if header.trim() != "smp-serve-repro v1" {
        return Err(format!(
            "bad header {header:?} (want \"smp-serve-repro v1\")"
        ));
    }
    let mut case: Option<ServeCase> = None;
    for (ln, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let ctx = |e: String| format!("line {}: {e}", ln + 1);
        match fields[0] {
            "config" => {
                if fields.len() != 5 {
                    return Err(ctx(
                        "config wants: threads batch_max cache_capacity seed".into()
                    ));
                }
                case = Some(ServeCase {
                    requests: Vec::new(),
                    threads: fields[1]
                        .parse()
                        .map_err(|e| ctx(format!("threads: {e}")))?,
                    batch_max: fields[2]
                        .parse()
                        .map_err(|e| ctx(format!("batch_max: {e}")))?,
                    cache_capacity: fields[3]
                        .parse()
                        .map_err(|e| ctx(format!("cache_capacity: {e}")))?,
                    seed: fields[4].parse().map_err(|e| ctx(format!("seed: {e}")))?,
                });
            }
            "request" => {
                let case = case
                    .as_mut()
                    .ok_or_else(|| ctx("request before config".into()))?;
                if fields.len() != 8 {
                    return Err(ctx(
                        "request wants: env robot batch deadline start_bits goal_bits arrival"
                            .into(),
                    ));
                }
                let parse_bits = |s: &str| -> Result<f64, String> {
                    let hex = s
                        .strip_prefix("0x")
                        .ok_or_else(|| format!("want hex bits, got {s:?}"))?;
                    u64::from_str_radix(hex, 16)
                        .map(f64::from_bits)
                        .map_err(|e| e.to_string())
                };
                case.requests.push(ServeCaseRequest {
                    env_sel: fields[1].parse().map_err(|e| ctx(format!("env: {e}")))?,
                    robot_sel: fields[2].parse().map_err(|e| ctx(format!("robot: {e}")))?,
                    batch: fields[3] == "1",
                    deadline: if fields[4] == "-" {
                        None
                    } else {
                        Some(
                            fields[4]
                                .parse()
                                .map_err(|e| ctx(format!("deadline: {e}")))?,
                        )
                    },
                    start: parse_bits(fields[5]).map_err(|e| ctx(format!("start: {e}")))?,
                    goal: parse_bits(fields[6]).map_err(|e| ctx(format!("goal: {e}")))?,
                    arrival_ns: fields[7]
                        .parse()
                        .map_err(|e| ctx(format!("arrival: {e}")))?,
                });
            }
            other => return Err(ctx(format!("unknown record {other:?}"))),
        }
    }
    case.ok_or_else(|| "repro file has no config line".to_string())
}

/// Sweep `runs` generated cases; returns `(case seed, violations)` for
/// every failing case.
pub fn serve_smoke(runs: u64, base_seed: u64) -> Vec<(u64, Vec<Violation>)> {
    let mut failures = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let case = generate_serve_case(seed);
        let violations = check_serve_case(&case);
        if !violations.is_empty() {
            failures.push((seed, violations));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_seed_deterministic_and_covers_the_mix() {
        let mut classes = (0, 0);
        let mut deadlines = 0;
        let mut unknown = 0;
        for s in 0..32 {
            let a = generate_serve_case(s);
            assert_eq!(a, generate_serve_case(s));
            for r in &a.requests {
                if r.batch {
                    classes.1 += 1;
                } else {
                    classes.0 += 1;
                }
                deadlines += usize::from(r.deadline.is_some());
                unknown += usize::from(r.env_sel % 4 == 3 || r.robot_sel % 3 == 2);
            }
        }
        assert!(classes.0 > 0 && classes.1 > 0);
        assert!(deadlines > 0);
        assert!(unknown > 0);
    }

    #[test]
    fn smoke_passes_on_a_small_sweep() {
        let failures = serve_smoke(6, 0);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn repro_round_trips() {
        for s in [3u64, 17, 40] {
            let case = generate_serve_case(s);
            let parsed = parse_serve(&serialize_serve(&case)).unwrap();
            assert_eq!(parsed, case);
        }
        assert!(parse_serve("nonsense\n").is_err());
        assert!(parse_serve("smp-serve-repro v1\nrequest 0 0 1 - 0x0 0x0 0\n").is_err());
    }

    #[test]
    fn shrink_is_greedy_and_locally_minimal() {
        // Artificial failure predicate: "at least 3 requests and more
        // than one thread or batch slot" — shrink must reach exactly the
        // boundary.
        let fails = |c: &ServeCase| c.requests.len() >= 3 && (c.threads > 1 || c.batch_max > 1);
        let case = (0..64)
            .map(generate_serve_case)
            .find(|c| c.requests.len() > 4 && fails(c))
            .expect("some generated case suits the predicate");
        let shrunk = shrink_serve_case(&case, fails);
        assert!(fails(&shrunk));
        assert_eq!(shrunk.requests.len(), 3);
        // Locally minimal: removing any request breaks the predicate.
        for i in 0..shrunk.requests.len() {
            let mut c = shrunk.clone();
            c.requests.remove(i);
            assert!(!fails(&c));
        }
    }
}
