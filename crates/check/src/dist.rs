//! Distributed-backend smoke oracles: the steal/ownership protocol's
//! model-checked invariants applied to real coordinator/worker runs.
//!
//! `specs/tla/StealProtocol.tla` states three properties over the
//! abstract protocol state; this module asserts each of them — **by the
//! same name** — against the counters and results an actual
//! [`DistExecutor`] phase reports (PROTOCOL.md §9):
//!
//! - **NoTaskDuplication** — no task is ever credited (executed and
//!   recorded) more than once, even when retransmitted `Done`s arrive
//!   twice or a crashed worker's tasks are re-run;
//! - **NoTaskLoss** — every task's result is present and byte-correct at
//!   quiescence: dropped messages and killed processes delay completion,
//!   never erase it;
//! - **Progress** — the phase reaches quiescence (the executor returns
//!   within its deadline) with a non-trivial schedule.
//!
//! Two bookkeeping oracles ride along, mirroring the DES catalog:
//! **ownership_at_quiescence** (the final owner of every task is a live
//! worker slot whose execution counter matches the tasks it owns) and
//! **message_conservation** (the steal/grant/deny and Done-delivery
//! ledgers close exactly).
//!
//! Cases come from the same generator the DES fuzzer and live smoke use,
//! so the dist sweep covers the same shapes (imbalanced queues, empty
//! PEs, every victim policy and steal amount) — but executes them on
//! worker **processes** over Unix domain sockets. With `--faults`, each
//! case also runs under a seed-derived [`DistFaultPlan`] (dropped
//! Done/Ack frames, delayed Assigns, one worker kill) and must still
//! satisfy the full catalog with results identical to a fault-free
//! baseline.

use crate::case::CaseSpec;
use crate::oracles::Violation;
use smp_runtime::dist::{
    synth_work, DistExecutor, DistFaultPlan, DistKill, DistOptions, DistOutcome, WireWriter,
    WorkDesc,
};
use smp_runtime::{ExecError, ExecSpec};

macro_rules! fail {
    ($out:expr, $oracle:literal, $($fmt:tt)+) => {
        $out.push(Violation { oracle: $oracle, detail: format!($($fmt)+) })
    };
}

/// Derive a deterministic dist fault plan from a case seed: moderate
/// message loss on the Done/Ack paths, some delayed Assigns, and — when
/// the case has a worker to spare — one mid-phase worker kill
/// (respawning on even seeds, redistributing on odd).
pub fn generate_dist_fault_plan(seed: u64, p: usize) -> DistFaultPlan {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let kills = if p >= 2 {
        vec![DistKill {
            worker: (next() % p as u64) as u32,
            after_tasks: 1 + next() % 3,
            respawn: next() % 2 == 0,
        }]
    } else {
        Vec::new()
    };
    DistFaultPlan {
        seed: next(),
        drop_done_permille: 150 + (next() % 200) as u16,
        drop_ack_permille: 150 + (next() % 200) as u16,
        delay_assign_permille: (next() % 400) as u16,
        kills,
        kill_thief_mid_steal: None,
    }
}

fn run_dist(spec: &CaseSpec, faults: DistFaultPlan) -> Result<DistOutcome, ExecError> {
    let mut exec = DistExecutor::new(DistOptions::process_with_faults(faults)?);
    let mut blob = WireWriter::new();
    blob.vec_u64(&spec.costs);
    let blob = blob.into_bytes();
    let exec_spec = ExecSpec {
        n_tasks: spec.num_tasks(),
        costs: Some(&spec.costs),
        payloads: None,
        assignment: &spec.assignment,
        steal: spec.steal,
        seed: spec.sim_seed,
    };
    exec.execute_raw(
        &exec_spec,
        &WorkDesc {
            kind: "synth",
            blob: &blob,
        },
    )
}

/// Run `spec` on real worker processes and check the protocol oracle
/// catalog. The case's DES fault plan and schedule hooks are ignored —
/// dist faults are injected separately via [`generate_dist_fault_plan`].
pub fn check_dist_case(spec: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let outcome = match run_dist(spec, DistFaultPlan::default()) {
        Err(e) => {
            // Progress is the liveness property: a deadline or transport
            // failure on a valid case is its violation.
            fail!(out, "Progress", "dist execute failed: {e} ({e:?})");
            return out;
        }
        Ok(o) => o,
    };
    no_task_duplication(spec, &outcome, &mut out);
    no_task_loss(spec, &outcome, &mut out);
    progress(spec, &outcome, &mut out);
    ownership_at_quiescence(spec, &outcome, &mut out);
    message_conservation(spec, &outcome, &mut out);
    out
}

/// As [`check_dist_case`], with a seed-derived fault plan armed: the
/// faulted run must satisfy the same catalog *and* return results
/// byte-identical to a fault-free baseline (exactly-once under message
/// loss and process crashes — the resilience half of the TLA+ spec).
pub fn check_dist_case_faulted(spec: &CaseSpec, plan: &DistFaultPlan) -> Vec<Violation> {
    let mut out = Vec::new();
    let baseline = match run_dist(spec, DistFaultPlan::default()) {
        Err(e) => {
            fail!(out, "Progress", "fault-free baseline failed: {e} ({e:?})");
            return out;
        }
        Ok(o) => o,
    };
    let faulted = match run_dist(spec, plan.clone()) {
        Err(e) => {
            fail!(
                out,
                "Progress",
                "faulted run did not reach quiescence: {e} (plan {plan:?})"
            );
            return out;
        }
        Ok(o) => o,
    };
    if faulted.results != baseline.results {
        fail!(
            out,
            "NoTaskDuplication",
            "faulted results diverge from the fault-free baseline (plan {plan:?})"
        );
    }
    no_task_duplication(spec, &faulted, &mut out);
    no_task_loss(spec, &faulted, &mut out);
    progress(spec, &faulted, &mut out);
    ownership_at_quiescence(spec, &faulted, &mut out);
    message_conservation(spec, &faulted, &mut out);
    if !plan.kills.is_empty() && faulted.report.resilience.crashes as usize > plan.kills.len() {
        fail!(
            out,
            "message_conservation",
            "{} crashes recorded but the plan kills only {} worker(s)",
            faulted.report.resilience.crashes,
            plan.kills.len()
        );
    }
    out
}

/// TLA+ `NoTaskDuplication`: a task is credited at most once. The
/// coordinator records each task on its first `Done` and acks duplicates
/// without re-crediting, so unique recordings must equal the task count
/// and per-worker execution counters must sum to it exactly.
fn no_task_duplication(spec: &CaseSpec, outcome: &DistOutcome, out: &mut Vec<Violation>) {
    let n = spec.num_tasks() as u64;
    let report = &outcome.report;
    let unique = report.metrics.get("dist.msgs.done_unique").unwrap_or(0);
    if unique != n {
        fail!(
            out,
            "NoTaskDuplication",
            "{unique} unique Done recordings for {n} tasks"
        );
    }
    let credited: u64 = report.per_pe_executed.iter().map(|&e| u64::from(e)).sum();
    if credited != n {
        fail!(
            out,
            "NoTaskDuplication",
            "per-worker counters credit {credited} executions for {n} tasks"
        );
    }
    if report.metrics.get("dist.tasks.executed").unwrap_or(0) != unique {
        fail!(
            out,
            "NoTaskDuplication",
            "dist.tasks.executed disagrees with unique Done recordings"
        );
    }
}

/// TLA+ `NoTaskLoss`: every task's result is present at quiescence and
/// byte-identical to the pure function of (task, cost) the worker
/// computes — nothing dropped, nothing substituted.
fn no_task_loss(spec: &CaseSpec, outcome: &DistOutcome, out: &mut Vec<Violation>) {
    let n = spec.num_tasks();
    if outcome.results.len() != n {
        fail!(
            out,
            "NoTaskLoss",
            "{} results for {n} tasks",
            outcome.results.len()
        );
        return;
    }
    for (t, bytes) in outcome.results.iter().enumerate() {
        let want = synth_work(t as u32, spec.costs[t]).to_le_bytes();
        if bytes[..] != want {
            fail!(
                out,
                "NoTaskLoss",
                "task {t} result is {bytes:02x?}, expected {want:02x?}"
            );
            return;
        }
    }
}

/// TLA+ `Progress`: the run reached quiescence (the executor returned —
/// enforced by reaching this function) and the report describes a
/// complete schedule: every task has a final owner and wall time moved
/// whenever work existed.
fn progress(spec: &CaseSpec, outcome: &DistOutcome, out: &mut Vec<Violation>) {
    let n = spec.num_tasks();
    let report = &outcome.report;
    if report.executed_by.len() != n {
        fail!(
            out,
            "Progress",
            "{} ownership records for {n} tasks at quiescence",
            report.executed_by.len()
        );
    }
    if n > 0 && report.makespan == 0 {
        fail!(out, "Progress", "{n} tasks completed in zero wall time");
    }
}

/// Final ownership is consistent at quiescence: every task's recorded
/// owner is a real worker slot, and each worker's execution counter
/// equals the number of tasks it finally owns.
fn ownership_at_quiescence(spec: &CaseSpec, outcome: &DistOutcome, out: &mut Vec<Violation>) {
    let p = spec.num_pes();
    let report = &outcome.report;
    let mut owned = vec![0u32; p];
    for (task, &w) in report.executed_by.iter().enumerate() {
        if w as usize >= p {
            fail!(
                out,
                "ownership_at_quiescence",
                "task {task} finally owned by bogus worker {w}"
            );
            return;
        }
        owned[w as usize] += 1;
    }
    for (w, (&counted, &owns)) in report.per_pe_executed.iter().zip(&owned).enumerate() {
        if counted != owns {
            fail!(
                out,
                "ownership_at_quiescence",
                "worker {w} credits {counted} executions but finally owns {owns} tasks"
            );
        }
    }
}

/// The protocol's message ledgers close: every brokered steal ask is
/// settled by exactly one Grant, one Deny, or an `unresolved` record
/// (victim crashed, or the phase quiesced before it answered); transfer
/// counters are backed by grants, and every received Done is classified
/// (unique, duplicate, or stale).
fn message_conservation(spec: &CaseSpec, outcome: &DistOutcome, out: &mut Vec<Violation>) {
    let report = &outcome.report;
    let m = &report.metrics;
    let requests = m.get("dist.steal.requests").unwrap_or(0);
    let hits = m.get("dist.steal.hits").unwrap_or(0);
    let misses = m.get("dist.steal.misses").unwrap_or(0);
    let unresolved = m.get("dist.steal.unresolved").unwrap_or(0);
    if requests != hits + misses + unresolved {
        fail!(
            out,
            "message_conservation",
            "steal requests {requests} != grants {hits} + denials {misses} \
             + unresolved-at-quiescence {unresolved}"
        );
    }
    if m.get("dist.msgs.grant").unwrap_or(0) != hits
        || m.get("dist.msgs.deny").unwrap_or(0) != misses
    {
        fail!(
            out,
            "message_conservation",
            "Grant/Deny frames disagree with the steal ledger"
        );
    }
    if spec.steal.is_none() && report.tasks_transferred != 0 && report.resilience.crashes == 0 {
        fail!(
            out,
            "message_conservation",
            "static schedule moved {} tasks without a crash",
            report.tasks_transferred
        );
    }
    let unique = m.get("dist.msgs.done_unique").unwrap_or(0);
    let dup = m.get("dist.msgs.done_dup").unwrap_or(0);
    let stale = m.get("dist.msgs.stale_done").unwrap_or(0);
    let received = m.get("dist.msgs.received").unwrap_or(0);
    if unique + dup + stale > received {
        fail!(
            out,
            "message_conservation",
            "{unique} unique + {dup} dup + {stale} stale Dones exceed {received} received frames"
        );
    }
}

/// Sweep `runs` generator cases through the dist oracles on real worker
/// processes; returns the failing `(seed, violations)` pairs.
pub fn dist_smoke(runs: u64, base_seed: u64) -> Vec<(u64, Vec<Violation>)> {
    let mut failures = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let spec = crate::gen::generate_case(seed);
        let violations = check_dist_case(&spec);
        if !violations.is_empty() {
            failures.push((seed, violations));
        }
    }
    failures
}

/// As [`dist_smoke`], but each case additionally runs under the
/// seed-derived [`DistFaultPlan`] and must satisfy the faulted catalog:
/// quiescence is still reached, results match the fault-free baseline
/// byte-for-byte, and every ledger closes.
pub fn dist_smoke_faulted(runs: u64, base_seed: u64) -> Vec<(u64, Vec<Violation>)> {
    let mut failures = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let spec = crate::gen::generate_case(seed);
        let plan = generate_dist_fault_plan(seed, spec.num_pes());
        let violations = check_dist_case_faulted(&spec, &plan);
        if !violations.is_empty() {
            failures.push((seed, violations));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_runtime::dist::{HandlerFactory, SpawnMode, SynthHandler};
    use smp_runtime::DistTuning;
    use std::sync::Arc;

    /// Unit tests avoid the worker binary (the check crate cannot build
    /// it): thread-mode workers speak the identical protocol, so the
    /// oracles see the same counters a process pool produces.
    fn run_threaded(spec: &CaseSpec, faults: DistFaultPlan) -> DistOutcome {
        let factory: HandlerFactory = Arc::new(|| Box::new(SynthHandler::default()));
        let mut exec = DistExecutor::new(DistOptions {
            tuning: DistTuning::default(),
            spawn: SpawnMode::Threads(factory),
            faults,
        });
        let mut blob = WireWriter::new();
        blob.vec_u64(&spec.costs);
        let blob = blob.into_bytes();
        let exec_spec = ExecSpec {
            n_tasks: spec.num_tasks(),
            costs: Some(&spec.costs),
            payloads: None,
            assignment: &spec.assignment,
            steal: spec.steal,
            seed: spec.sim_seed,
        };
        exec.execute_raw(
            &exec_spec,
            &WorkDesc {
                kind: "synth",
                blob: &blob,
            },
        )
        .expect("dist phase")
    }

    fn check_threaded(seed: u64, faulted: bool) -> Vec<Violation> {
        let spec = crate::gen::generate_case(seed);
        let mut out = Vec::new();
        let plan = if faulted {
            generate_dist_fault_plan(seed, spec.num_pes())
        } else {
            DistFaultPlan::default()
        };
        let baseline = run_threaded(&spec, DistFaultPlan::default());
        let outcome = run_threaded(&spec, plan);
        if outcome.results != baseline.results {
            fail!(out, "NoTaskDuplication", "faulted results diverge");
        }
        no_task_duplication(&spec, &outcome, &mut out);
        no_task_loss(&spec, &outcome, &mut out);
        progress(&spec, &outcome, &mut out);
        ownership_at_quiescence(&spec, &outcome, &mut out);
        message_conservation(&spec, &outcome, &mut out);
        out
    }

    #[test]
    fn generated_cases_pass_the_dist_oracles() {
        for seed in 0..12u64 {
            let v = check_threaded(seed, false);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn generated_cases_pass_the_faulted_dist_oracles() {
        for seed in 100..108u64 {
            let v = check_threaded(seed, true);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn fault_plan_derivation_is_deterministic_and_bounded() {
        let a = generate_dist_fault_plan(42, 4);
        let b = generate_dist_fault_plan(42, 4);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.kills.len(), 1);
        assert!(a.kills[0].worker < 4);
        assert!(a.drop_done_permille < 1000 && a.drop_ack_permille < 1000);
        // single-worker pools are never killed (no survivor, no respawner)
        assert!(generate_dist_fault_plan(7, 1).kills.is_empty());
    }
}
