//! Random case generation.
//!
//! Each case is a pure function of one `u64` seed, drawn wide across the
//! DES configuration space: task counts and cost spreads, placement
//! skews, every steal policy and batch amount, both machine models,
//! random fault plans (stragglers, crashes, message loss and jitter), and
//! a random schedule perturbation. The generator only emits *valid*
//! configurations — every task assigned once, fault targets in range,
//! never crashing all PEs — so any simulator rejection is a bug.

use crate::case::{CaseSpec, MachineKind, SchedulePlan};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use smp_runtime::{FaultPlan, LiveFaultPlan, StealAmount, StealConfig, StealPolicyKind, VTime};

/// Build the deterministic case for `seed`.
pub fn generate_case(seed: u64) -> CaseSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = rng.random_range(1usize..11);
    let n = rng.random_range(0usize..161);

    // costs: a base spread plus occasional decade-heavier outliers, the
    // long-tail shape of measured region workloads
    let base: u64 = rng.random_range(500u64..20_000);
    let costs: Vec<u64> = (0..n)
        .map(|_| {
            let c = rng.random_range(1u64..base.max(2));
            if rng.random_bool(0.08) {
                c.saturating_mul(rng.random_range(5u64..40))
            } else {
                c
            }
        })
        .collect();

    // placement: everything on one PE (the paper's worst case), block
    // round-robin, or a fully random owner per task
    let mut assignment: Vec<Vec<u32>> = vec![Vec::new(); p];
    match rng.random_range(0u32..3) {
        0 => {
            let hot = rng.random_range(0usize..p);
            assignment[hot] = (0..n as u32).collect();
        }
        1 => {
            for t in 0..n {
                assignment[t % p].push(t as u32);
            }
        }
        _ => {
            for t in 0..n as u32 {
                let owner = rng.random_range(0usize..p);
                assignment[owner].push(t);
            }
        }
    }

    let machine = if rng.random_bool(0.5) {
        MachineKind::Hopper
    } else {
        MachineKind::Opteron
    };

    let steal = if rng.random_bool(0.18) {
        None
    } else {
        let policy = match rng.random_range(0u32..5) {
            0 => StealPolicyKind::RandK(rng.random_range(1usize..9)),
            1 => StealPolicyKind::Diffusive,
            2 => StealPolicyKind::Hybrid(rng.random_range(2usize..9)),
            3 => StealPolicyKind::DiffusiveAdaptive,
            _ => StealPolicyKind::Lifeline,
        };
        let amount = match rng.random_range(0u32..3) {
            0 => StealAmount::One,
            1 => StealAmount::Half,
            _ => StealAmount::Fixed(rng.random_range(1usize..5)),
        };
        Some(StealConfig { policy, amount })
    };

    let fault = generate_fault_plan(&mut rng, p);

    let schedule = if rng.random_bool(0.25) {
        SchedulePlan::Fifo
    } else {
        SchedulePlan::Seeded(rng.next_u64())
    };

    CaseSpec {
        costs,
        assignment,
        machine,
        steal,
        sim_seed: rng.next_u64(),
        fault,
        schedule,
    }
}

/// Build the deterministic **live** fault plan for `seed` against `p`
/// workers — the wall-clock sibling of the DES plan baked into each
/// [`CaseSpec`]. Always valid: injected panics target at most `p - 1`
/// distinct workers (none at all when `p == 1`), sleeps are short enough
/// to keep a whole smoke case under a few milliseconds, and grant-drop
/// rates stay below certainty so thieves always make progress. ~35% of
/// seeds produce a zero-fault plan, keeping the faulted sweep anchored to
/// plain smoke behaviour.
pub fn generate_live_fault_plan(seed: u64, p: usize) -> LiveFaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11F3_FA17_D00D_CAFE);
    let mut plan = LiveFaultPlan::new(rng.next_u64());
    if rng.random_bool(0.35) {
        return plan; // zero-fault: the fault machinery armed but silent
    }
    if p >= 2 {
        // panic at most p-1 distinct workers so a survivor always remains
        let doomed = rng.random_range(0usize..p.min(3));
        let mut victims: Vec<usize> = (0..p).collect();
        for _ in 0..doomed {
            let i = rng.random_range(0usize..victims.len());
            let worker = victims.swap_remove(i);
            plan = plan.with_panic(worker, rng.random_range(0usize..5));
        }
    }
    for _ in 0..rng.random_range(0u32..3) {
        plan = plan.with_straggler(
            rng.random_range(0usize..p),
            rng.random_range(20u64..300),
            rng.random_range(1usize..4),
        );
    }
    if rng.random_bool(0.4) {
        plan = plan.with_grant_drop_rate(rng.random_range(0.0f64..0.5));
    }
    plan
}

fn generate_fault_plan(rng: &mut StdRng, p: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    if rng.random_bool(0.4) {
        return plan; // zero-fault: pure schedule exploration
    }
    if rng.random_bool(0.5) {
        plan.msg_loss = rng.random_range(0.0f64..0.7);
    }
    if rng.random_bool(0.5) {
        plan.msg_jitter = rng.random_range(0.0f64..0.6);
        plan.jitter_max = rng.random_range(1_000u64..120_000);
    }
    for _ in 0..rng.random_range(0u32..3) {
        let from: VTime = rng.random_range(0u64..1_500_000);
        plan = plan.with_straggler(
            rng.random_range(0usize..p),
            from,
            from + rng.random_range(10_000u64..2_000_000),
            rng.random_range(1.5f64..8.0),
        );
    }
    // crash at most p-1 distinct PEs so the run can always complete
    if p >= 2 {
        let crashes = rng.random_range(0usize..p.min(3));
        let mut victims: Vec<usize> = (0..p).collect();
        for _ in 0..crashes {
            let i = rng.random_range(0usize..victims.len());
            let pe = victims.swap_remove(i);
            plan = plan.with_crash(pe, rng.random_range(1u64..1_200_000));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(
                generate_case(seed),
                generate_case(seed),
                "seed {seed} not reproducible"
            );
        }
    }

    #[test]
    fn generated_cases_are_valid() {
        for seed in 0..200 {
            let case = generate_case(seed);
            let p = case.num_pes();
            assert!(p >= 1);
            // every task assigned exactly once
            let mut seen = vec![false; case.num_tasks()];
            for q in &case.assignment {
                for &t in q {
                    assert!(!seen[t as usize], "seed {seed}: task {t} assigned twice");
                    seen[t as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "seed {seed}: unassigned task");
            assert!(case.fault.validate(p).is_ok(), "seed {seed}: invalid plan");
            // never all PEs crashed
            let crashed: std::collections::HashSet<usize> =
                case.fault.crashes.iter().map(|c| c.pe).collect();
            assert!(crashed.len() < p, "seed {seed}: all PEs crash");
        }
    }

    #[test]
    fn live_fault_plans_are_deterministic_and_valid() {
        for seed in 0..200u64 {
            for p in 1..6usize {
                let plan = generate_live_fault_plan(seed, p);
                assert_eq!(
                    plan,
                    generate_live_fault_plan(seed, p),
                    "seed {seed} p {p} not reproducible"
                );
                assert!(
                    plan.validate(p).is_ok(),
                    "seed {seed} p {p}: invalid live plan {plan:?}"
                );
                if p == 1 {
                    assert!(plan.panics.is_empty(), "seed {seed}: panic with p = 1");
                }
            }
        }
    }

    #[test]
    fn live_fault_plans_cover_the_space() {
        let plans: Vec<LiveFaultPlan> = (0..300u64)
            .map(|s| generate_live_fault_plan(s, 6))
            .collect();
        assert!(plans.iter().any(|p| p.is_zero()));
        assert!(plans.iter().any(|p| !p.panics.is_empty()));
        assert!(plans.iter().any(|p| !p.stragglers.is_empty()));
        assert!(plans.iter().any(|p| p.grant_drop_rate > 0.0));
    }

    #[test]
    fn generator_covers_the_space() {
        let cases: Vec<CaseSpec> = (0..300).map(generate_case).collect();
        assert!(cases.iter().any(|c| c.steal.is_none()));
        assert!(cases.iter().any(|c| c.steal.is_some()));
        assert!(cases.iter().any(|c| c.fault.is_zero()));
        assert!(cases.iter().any(|c| !c.fault.crashes.is_empty()));
        assert!(cases.iter().any(|c| !c.fault.stragglers.is_empty()));
        assert!(cases.iter().any(|c| c.fault.msg_loss > 0.0));
        assert!(cases
            .iter()
            .any(|c| matches!(c.schedule, SchedulePlan::Fifo)));
        assert!(cases
            .iter()
            .any(|c| matches!(c.schedule, SchedulePlan::Seeded(_))));
        assert!(cases.iter().any(|c| c.num_pes() == 1));
        assert!(cases.iter().any(|c| c.num_tasks() == 0));
    }
}
