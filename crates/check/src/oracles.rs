//! The invariant-oracle library.
//!
//! Every oracle is a pure predicate over `(CaseSpec, SimReport,
//! Quiescence)`; the catalog (DESIGN.md §10) is checked after every fuzz
//! run, and any violation is shrunk to a minimal repro. Oracles must hold
//! for *every* legal schedule of a case — they encode what the DES
//! promises, not what one interleaving happens to do.

use crate::case::CaseSpec;
use smp_runtime::{SimReport, StealAmount};

/// One failed invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable oracle name (the catalog key in DESIGN.md §10).
    pub oracle: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

macro_rules! fail {
    ($out:expr, $oracle:literal, $($fmt:tt)+) => {
        $out.push(Violation { oracle: $oracle, detail: format!($($fmt)+) })
    };
}

/// Run the case and check the full oracle catalog. A simulation error is
/// itself a violation: the generator only emits valid configurations, so
/// the simulator has no excuse to reject or abort one.
pub fn check_case(spec: &CaseSpec) -> Vec<Violation> {
    match spec.run() {
        Err(e) => vec![Violation {
            oracle: "sim_accepts_valid_input",
            detail: format!("simulate_explored failed: {e} ({e:?})"),
        }],
        Ok((report, quiescence)) => check_outcome(spec, &report, &quiescence),
    }
}

/// Check every oracle against a completed run.
pub fn check_outcome(
    spec: &CaseSpec,
    report: &SimReport,
    q: &smp_runtime::Quiescence,
) -> Vec<Violation> {
    let mut out = Vec::new();
    exactly_once(spec, report, &mut out);
    ownership_at_quiescence(spec, report, q, &mut out);
    message_conservation(q, &mut out);
    monotone_time(report, q, &mut out);
    differential_vs_sequential(spec, report, &mut out);
    steal_accounting(spec, report, &mut out);
    out
}

/// Every task executed exactly once: each has a final executor and the
/// per-PE execution counters sum to the task count (a double execution
/// inflates the sum even though `executed_by` only keeps the last run).
fn exactly_once(spec: &CaseSpec, report: &SimReport, out: &mut Vec<Violation>) {
    let n = spec.num_tasks();
    if report.executed_by.len() != n {
        fail!(
            out,
            "exactly_once",
            "executed_by has {} entries for {n} tasks",
            report.executed_by.len()
        );
        return;
    }
    for (task, &pe) in report.executed_by.iter().enumerate() {
        if pe == u32::MAX {
            fail!(out, "exactly_once", "task {task} never executed");
        } else if pe as usize >= spec.num_pes() {
            fail!(out, "exactly_once", "task {task} executed by bogus PE {pe}");
        }
    }
    let executed: u64 = report.per_pe_executed.iter().map(|&e| u64::from(e)).sum();
    if executed != n as u64 {
        fail!(
            out,
            "exactly_once",
            "{executed} executions recorded for {n} tasks (double or lost execution)"
        );
    }
}

/// Region-ownership consistency at quiescence: all queues drained, and
/// each PE's execution counter matches the tasks it finally owns in
/// `executed_by` — ownership moved with steals and recoveries must land
/// in exactly one place.
fn ownership_at_quiescence(
    spec: &CaseSpec,
    report: &SimReport,
    q: &smp_runtime::Quiescence,
    out: &mut Vec<Violation>,
) {
    if q.queued_leftover != 0 {
        fail!(
            out,
            "ownership_at_quiescence",
            "{} tasks still queued after the event queue drained",
            q.queued_leftover
        );
    }
    let mut owned = vec![0u32; spec.num_pes()];
    for &pe in &report.executed_by {
        if (pe as usize) < owned.len() {
            owned[pe as usize] += 1;
        }
    }
    for (pe, (&counted, &owns)) in report.per_pe_executed.iter().zip(&owned).enumerate() {
        if counted != owns {
            fail!(
                out,
                "ownership_at_quiescence",
                "PE {pe} counts {counted} executions but finally owns {owns} tasks"
            );
        }
    }
    let expected_crashes = q.live.iter().filter(|&&a| !a).count() as u64;
    if report.resilience.crashes != expected_crashes {
        fail!(
            out,
            "ownership_at_quiescence",
            "{} crashes recorded but {} PEs dead at quiescence",
            report.resilience.crashes,
            expected_crashes
        );
    }
}

/// Message conservation: sent = delivered + dropped + in-flight-at-crash.
fn message_conservation(q: &smp_runtime::Quiescence, out: &mut Vec<Violation>) {
    if !q.messages_conserved() {
        fail!(
            out,
            "message_conservation",
            "sent {} != delivered {} + dropped {} + dead-dest {}",
            q.msgs_sent,
            q.msgs_delivered,
            q.msgs_dropped,
            q.msgs_dead_dest
        );
    }
}

/// Virtual time is monotone: no event was ever scheduled into the past,
/// and the last processed event is at or after the last task completion.
fn monotone_time(report: &SimReport, q: &smp_runtime::Quiescence, out: &mut Vec<Violation>) {
    if q.time_regressions != 0 {
        fail!(
            out,
            "monotone_time",
            "{} events pushed into the past",
            q.time_regressions
        );
    }
    if q.final_time < report.makespan {
        fail!(
            out,
            "monotone_time",
            "final event at {} precedes makespan {}",
            q.final_time,
            report.makespan
        );
    }
}

/// Differential oracle: the run's final counts must match a sequential
/// baseline (one PE, static order, no faults, FIFO schedule) — the DES
/// analog of "the parallel roadmap has the same nodes as the sequential
/// one". Execution counts always match; total busy time additionally
/// matches whenever no fault distorts per-task cost (stragglers) or
/// re-runs work (crashes).
fn differential_vs_sequential(spec: &CaseSpec, report: &SimReport, out: &mut Vec<Violation>) {
    let n = spec.num_tasks();
    let baseline = CaseSpec {
        costs: spec.costs.clone(),
        assignment: vec![(0..n as u32).collect()],
        machine: spec.machine,
        steal: None,
        sim_seed: 0,
        fault: smp_runtime::FaultPlan::new(0),
        schedule: crate::case::SchedulePlan::Fifo,
    };
    let Ok((base, _)) = baseline.run() else {
        fail!(out, "differential_vs_sequential", "baseline run failed");
        return;
    };
    let base_exec: u64 = base.per_pe_executed.iter().map(|&e| u64::from(e)).sum();
    let run_exec: u64 = report.per_pe_executed.iter().map(|&e| u64::from(e)).sum();
    if base_exec != run_exec {
        fail!(
            out,
            "differential_vs_sequential",
            "sequential baseline executed {base_exec} tasks, this run {run_exec}"
        );
    }
    let cost_preserving = spec.fault.stragglers.is_empty() && spec.fault.crashes.is_empty();
    if cost_preserving {
        let base_busy: u64 = base.per_pe_busy.iter().sum();
        let run_busy: u64 = report.per_pe_busy.iter().sum();
        if base_busy != run_busy {
            fail!(
                out,
                "differential_vs_sequential",
                "total busy time {run_busy} != sequential {base_busy} with cost-preserving faults"
            );
        }
    }
}

/// Steal-traffic bookkeeping closes: every serviced request is a grant or
/// a denial, transferred tasks respect the configured batch bound, and
/// stolen executions are backed by transfers.
fn steal_accounting(spec: &CaseSpec, report: &SimReport, out: &mut Vec<Violation>) {
    let lifeline_pushes = report.metrics.get("des.steal.lifeline_pushes").unwrap_or(0);
    let grants = report.steal_hits.saturating_sub(lifeline_pushes);
    if report.steal_attempts != grants + report.steal_misses {
        fail!(
            out,
            "steal_accounting",
            "serviced {} != grants {grants} + denials {}",
            report.steal_attempts,
            report.steal_misses
        );
    }
    if spec.steal.is_none() && report.steal_attempts + report.steal_hits != 0 {
        fail!(
            out,
            "steal_accounting",
            "static schedule recorded steal traffic ({} serviced, {} hits)",
            report.steal_attempts,
            report.steal_misses
        );
    }
    if let Some(steal) = spec.steal {
        let max_batch = match steal.amount {
            StealAmount::One => 1,
            StealAmount::Fixed(k) => k as u64,
            StealAmount::Half => spec.num_tasks() as u64,
        };
        if report.tasks_transferred > report.steal_hits.saturating_mul(max_batch.max(1)) {
            fail!(
                out,
                "steal_accounting",
                "{} tasks moved by {} hits exceeds batch bound {max_batch}",
                report.tasks_transferred,
                report.steal_hits
            );
        }
    }
    let stolen_exec: u64 = report
        .per_pe_stolen_executed
        .iter()
        .map(|&e| u64::from(e))
        .sum();
    // a recovered orphan may execute off-owner without a steal transfer,
    // so only fault-free runs pin the tighter bound
    if spec.fault.crashes.is_empty() && stolen_exec > report.tasks_transferred {
        fail!(
            out,
            "steal_accounting",
            "{stolen_exec} stolen executions but only {} transfers",
            report.tasks_transferred
        );
    }
}
