//! Greedy structural shrinking of a failing case.
//!
//! Repeatedly tries size-reducing edits — drop tasks, merge PEs away,
//! strip fault-plan entries, simplify the steal config, fall back to the
//! FIFO schedule — keeping an edit only if the edited case *still fails*
//! (same oracle verdict source: [`crate::oracles::check_case`]). The loop
//! is bounded, so shrinking a pathological case terminates; the result is
//! a local minimum: no single remaining edit preserves the failure.

use crate::case::{CaseSpec, SchedulePlan};
use crate::oracles::{check_case, Violation};

/// Upper bound on shrink-probe simulations, so shrinking can never take
/// meaningfully longer than the fuzz run that found the bug.
const MAX_PROBES: usize = 400;

/// Shrink `spec` (which must currently fail) to a locally-minimal failing
/// case. Returns the shrunk case and its violations.
pub fn shrink(spec: &CaseSpec) -> (CaseSpec, Vec<Violation>) {
    let mut best = spec.clone();
    let mut violations = check_case(&best);
    debug_assert!(!violations.is_empty(), "shrink() called on a passing case");
    let mut probes = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if probes >= MAX_PROBES {
                return (best, violations);
            }
            if candidate.size() >= best.size() {
                continue;
            }
            probes += 1;
            let v = check_case(&candidate);
            if !v.is_empty() {
                best = candidate;
                violations = v;
                improved = true;
                break; // restart from the smaller case
            }
        }
        if !improved {
            return (best, violations);
        }
    }
}

/// All single-step reductions of `spec`, biggest first.
fn candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    let n = spec.num_tasks();
    let p = spec.num_pes();

    // halve the workload from either end, then peel single tasks
    if n > 0 {
        out.push(truncate_tasks(spec, n / 2));
        out.push(truncate_tasks(spec, n - 1));
    }
    // drop the last PE, folding its queue into PE 0
    if p > 1 {
        out.push(drop_last_pe(spec));
    }
    // strip fault-plan entries one at a time
    for i in 0..spec.fault.crashes.len() {
        let mut c = spec.clone();
        c.fault.crashes.remove(i);
        out.push(c);
    }
    for i in 0..spec.fault.stragglers.len() {
        let mut c = spec.clone();
        c.fault.stragglers.remove(i);
        out.push(c);
    }
    for i in 0..spec.fault.drop_seqs.len() {
        let mut c = spec.clone();
        c.fault.drop_seqs.remove(i);
        out.push(c);
    }
    for i in 0..spec.fault.jitter_seqs.len() {
        let mut c = spec.clone();
        c.fault.jitter_seqs.remove(i);
        out.push(c);
    }
    if spec.fault.msg_loss > 0.0 {
        let mut c = spec.clone();
        c.fault.msg_loss = 0.0;
        out.push(c);
    }
    if spec.fault.msg_jitter > 0.0 {
        let mut c = spec.clone();
        c.fault.msg_jitter = 0.0;
        c.fault.jitter_max = 0;
        out.push(c);
    }
    // canonical FIFO schedule beats a seeded one
    if !matches!(spec.schedule, SchedulePlan::Fifo) {
        let mut c = spec.clone();
        c.schedule = SchedulePlan::Fifo;
        out.push(c);
    }
    out
}

/// Keep only tasks `0..new_n`, preserving queue structure.
fn truncate_tasks(spec: &CaseSpec, new_n: usize) -> CaseSpec {
    let mut c = spec.clone();
    c.costs.truncate(new_n);
    for q in &mut c.assignment {
        q.retain(|&t| (t as usize) < new_n);
    }
    c
}

/// Remove the last PE: its queue prepends onto PE 0 and fault entries
/// targeting it are dropped.
fn drop_last_pe(spec: &CaseSpec) -> CaseSpec {
    let mut c = spec.clone();
    let gone = c.assignment.len() - 1;
    let moved = c.assignment.pop().unwrap_or_default();
    c.assignment[0].extend(moved);
    c.fault.crashes.retain(|cr| cr.pe != gone);
    c.fault.stragglers.retain(|s| s.pe != gone);
    // never let the shrunk plan crash every remaining PE
    let remaining = c.assignment.len();
    loop {
        let crashed: std::collections::HashSet<usize> =
            c.fault.crashes.iter().map(|cr| cr.pe).collect();
        if crashed.len() < remaining || c.fault.crashes.is_empty() {
            break;
        }
        c.fault.crashes.pop();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    #[test]
    fn reductions_stay_valid() {
        for seed in 0..60 {
            let case = generate_case(seed);
            for cand in candidates(&case) {
                let p = cand.num_pes();
                assert!(p >= 1, "seed {seed}: reduction removed every PE");
                let mut seen = vec![false; cand.num_tasks()];
                for q in &cand.assignment {
                    for &t in q {
                        assert!(
                            !seen[t as usize],
                            "seed {seed}: reduction duplicated task {t}"
                        );
                        seen[t as usize] = true;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "seed {seed}: reduction orphaned a task"
                );
                assert!(
                    cand.fault.validate(p).is_ok(),
                    "seed {seed}: reduction broke the fault plan"
                );
            }
        }
    }
}
