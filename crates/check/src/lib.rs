//! # smp-check — schedule-exploration fuzzing for the DES
//!
//! The simulator promises determinism *given* an event order, but many
//! legal orders exist whenever events tie on virtual time. This crate
//! explores that space: it fuzzes the DES across thousands of randomized
//! `(workload, placement, steal config, fault plan, schedule seed)`
//! cases, perturbing equal-time tie-breaking through the runtime's
//! [`ScheduleOracle`](smp_runtime::ScheduleOracle) hook, and checks an
//! invariant-oracle catalog after every run:
//!
//! - **exactly_once** — every task executes exactly once, by a real PE
//! - **ownership_at_quiescence** — queues drained, per-PE counters match
//!   final ownership, crash accounting closes
//! - **message_conservation** — sent = delivered + dropped + in-flight at
//!   a crash
//! - **monotone_time** — no event scheduled into the past; final time
//!   covers the makespan
//! - **differential_vs_sequential** — final counts match a 1-PE
//!   no-fault FIFO baseline run
//! - **steal_accounting** — steal traffic bookkeeping closes and batch
//!   bounds hold
//!
//! Failures shrink greedily to a locally-minimal case and serialize to a
//! line-oriented replay file (see [`repro`]) that both
//! `smp-check --replay` and `probe --replay` re-execute
//! deterministically.
//!
//! Run it: `cargo run -p smp-check -- --runs 1000`.
//!
//! A second sweep targets the **live shared-memory backend** ([`live`]):
//! the same generator cases run on real OS threads and are checked for
//! exactly-once execution, steal-accounting conservation, and result
//! determinism (two racing runs must return identical results). Live
//! schedules come from the OS, so failures are reported but not shrunk.
//! Run it: `cargo run -p smp-check -- --live-smoke 200`.
//!
//! With `--faults`, the live sweep also re-runs every case under a
//! deterministic [`smp_runtime::LiveFaultPlan`] — injected worker
//! panics, induced stragglers, dropped steal grants — and requires
//! recovery to complete with results byte-identical to the fault-free
//! baseline ([`live::check_live_case_faulted`]).
//! Run it: `cargo run -p smp-check -- --live-smoke 200 --faults`.
//!
//! A third sweep targets the **restart-portfolio engine** ([`portfolio`]):
//! generated `(members, workers, schedule, steal)` cases must settle a
//! deterministic winner and a closing wasted-work ledger on both
//! backends, with cancellation overshoot bounded by one in-flight
//! attempt per worker.
//! Run it: `cargo run -p smp-check -- --portfolio-smoke 50`.
//!
//! A fourth sweep targets the **planning-as-a-service layer** ([`serve`]):
//! generated multi-tenant workloads — mixed classes, shared snapshot
//! keys, unknown keys, logical-deadline pressure — must keep the
//! request-conservation ledger closed and return byte-identical answer
//! digests across batched/sequential modes and DES/live backends.
//! Failures shrink to a minimal workload and serialize to an
//! `smp-serve-repro v1` file that `--replay` re-executes.
//! Run it: `cargo run -p smp-check -- --serve-smoke 200`.
//!
//! A fifth sweep targets the **distributed multi-process backend**
//! ([`dist`]): generator cases execute on real coordinator/worker
//! processes over Unix domain sockets, and the oracles assert the
//! model-checked invariants of `specs/tla/StealProtocol.tla` by name —
//! **NoTaskDuplication**, **NoTaskLoss**, **Progress** — plus
//! ownership-at-quiescence and message-conservation ledgers. With
//! `--faults`, every case re-runs under a seed-derived
//! [`smp_runtime::dist::DistFaultPlan`] (dropped Done/Ack frames,
//! delayed Assigns, a worker-process kill) and must still match its
//! fault-free baseline byte-for-byte. Failing cases serialize to the
//! same repro format as the DES fuzzer.
//! Run it: `cargo run -p smp-check -- --dist-smoke 25 --faults`.

pub mod case;
pub mod dist;
pub mod gen;
pub mod harness;
pub mod live;
pub mod oracles;
pub mod portfolio;
pub mod repro;
pub mod serve;
pub mod shrink;

pub use case::{CaseSpec, MachineKind, SchedulePlan};
pub use dist::{
    check_dist_case, check_dist_case_faulted, dist_smoke, dist_smoke_faulted,
    generate_dist_fault_plan,
};
pub use harness::{fuzz, FuzzConfig, FuzzOutcome};
pub use live::{check_live_case, check_live_case_faulted, live_smoke, live_smoke_faulted};
pub use oracles::{check_case, check_outcome, Violation};
pub use portfolio::{check_portfolio_case, generate_portfolio_case, portfolio_smoke};
pub use repro::{parse, serialize};
pub use serve::{check_serve_case, generate_serve_case, serve_smoke, shrink_serve_case, ServeCase};
pub use shrink::shrink;
