//! The tenant-facing key registry: string keys → concrete environments
//! and robot radii.
//!
//! Keys are the untrusted boundary of the front door — everything behind
//! them ([`crate::snapshot::SnapshotKey`]) is resolved, validated data.
//! Unknown keys reject the request with a structured
//! [`crate::ServeError`]; they never panic and never build a snapshot.

use smp_geom::{envs, Environment};

/// Resolve an environment key to its environment, or `None` if unknown.
///
/// Every key maps to a deterministic constructor, so two tenants naming
/// the same key provably plan in the same world — the premise behind
/// sharing one roadmap snapshot between them.
pub fn resolve_env(key: &str) -> Option<Environment<3>> {
    match key {
        "free" => Some(envs::free_env()),
        "small_cube" => Some(envs::small_cube()),
        "med_cube" => Some(envs::med_cube()),
        "mixed" => Some(envs::mixed()),
        "mixed_30" => Some(envs::mixed_30()),
        "walls" => Some(envs::walls(1, 0.10, 0.05)),
        _ => None,
    }
}

/// Resolve a robot key to its ball-robot radius, or `None` if unknown.
pub fn resolve_robot(key: &str) -> Option<f64> {
    match key {
        "point" => Some(0.0),
        "probe" => Some(0.02),
        "ball" => Some(0.05),
        _ => None,
    }
}

/// Every registered environment key, in registry order.
pub fn env_keys() -> &'static [&'static str] {
    &[
        "free",
        "small_cube",
        "med_cube",
        "mixed",
        "mixed_30",
        "walls",
    ]
}

/// Every registered robot key, in registry order.
pub fn robot_keys() -> &'static [&'static str] {
    &["point", "probe", "ball"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_key_resolves_and_unknowns_do_not() {
        for k in env_keys() {
            assert!(resolve_env(k).is_some(), "env key {k}");
        }
        for k in robot_keys() {
            assert!(resolve_robot(k).is_some(), "robot key {k}");
        }
        assert!(resolve_env("no-such-env").is_none());
        assert!(resolve_robot("no-such-robot").is_none());
    }

    #[test]
    fn resolution_is_deterministic() {
        let a = resolve_env("med_cube").unwrap();
        let b = resolve_env("med_cube").unwrap();
        assert_eq!(
            a.blocked_fraction().to_bits(),
            b.blocked_fraction().to_bits()
        );
        assert_eq!(a.obstacles().len(), b.obstacles().len());
    }
}
