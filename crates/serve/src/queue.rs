//! Admission queue and the request-conservation ledger.
//!
//! Admission assigns each request a monotone sequence number. Dispatch
//! ("service") order is deterministic and mode-independent: all
//! interactive requests first, then batch requests, FIFO within each
//! class. Because the service order is a pure function of the admitted
//! set — never of thread scheduling or batch sizing — a batched
//! concurrent run and a sequential replay dispatch the same requests in
//! the same order, which is what makes their answer digests comparable.
//!
//! The [`ServeLedger`] is the conservation law the `test`-archetype
//! oracles enforce at runtime: every admitted request ends in exactly one
//! of completed / rejected / expired, no request is lost, none is
//! answered twice.

use crate::request::{PlanRequest, QueryClass, ServeOutcome};
use std::collections::VecDeque;

/// One admitted request: the payload plus its admission sequence number.
#[derive(Debug, Clone)]
pub struct Admitted {
    /// Admission sequence number (monotone, unique per server).
    pub seq: u64,
    /// The request.
    pub req: PlanRequest,
}

/// Request-conservation ledger: `admitted = completed + rejected +
/// expired` once the queue has drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeLedger {
    /// Requests admitted by the queue.
    pub admitted: u64,
    /// Requests answered (solved or proven no-path).
    pub completed: u64,
    /// Requests refused (unknown keys, invalid input, cancellation).
    pub rejected: u64,
    /// Requests whose logical deadline passed before dispatch.
    pub expired: u64,
}

impl ServeLedger {
    /// The conservation law: every admitted request is accounted for
    /// exactly once.
    pub fn closes(&self) -> bool {
        self.admitted == self.completed + self.rejected + self.expired
    }

    /// Record one final outcome.
    pub fn record(&mut self, outcome: &ServeOutcome) {
        match outcome {
            ServeOutcome::Solved { .. } | ServeOutcome::NoPath => self.completed += 1,
            ServeOutcome::Rejected(_) => self.rejected += 1,
            ServeOutcome::Expired => self.expired += 1,
        }
    }
}

/// FIFO-within-class admission queue.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    next_seq: u64,
    interactive: VecDeque<Admitted>,
    batch: VecDeque<Admitted>,
    /// Running conservation ledger (admissions counted here; outcomes are
    /// recorded by the server as requests settle).
    pub ledger: ServeLedger,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        AdmissionQueue::default()
    }

    /// Admit `req`, returning its admission sequence number.
    pub fn admit(&mut self, req: PlanRequest) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ledger.admitted += 1;
        let admitted = Admitted { seq, req };
        match admitted.req.class {
            QueryClass::Interactive => self.interactive.push_back(admitted),
            QueryClass::Batch => self.batch.push_back(admitted),
        }
        seq
    }

    /// Requests waiting for dispatch.
    pub fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// True when no requests wait.
    pub fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.batch.is_empty()
    }

    /// Drain every waiting request in service order: interactive first,
    /// then batch, FIFO (admission order) within each class.
    pub fn drain_service_order(&mut self) -> Vec<Admitted> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.interactive.drain(..));
        out.extend(self.batch.drain(..));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeError;
    use smp_geom::Point;

    fn req(class: QueryClass) -> PlanRequest {
        PlanRequest {
            class,
            ..PlanRequest::new("free", "point", Point::splat(0.1), Point::splat(0.9))
        }
    }

    #[test]
    fn service_order_is_class_then_fifo() {
        let mut q = AdmissionQueue::new();
        let s0 = q.admit(req(QueryClass::Batch));
        let s1 = q.admit(req(QueryClass::Interactive));
        let s2 = q.admit(req(QueryClass::Batch));
        let s3 = q.admit(req(QueryClass::Interactive));
        assert_eq!((s0, s1, s2, s3), (0, 1, 2, 3));
        let order: Vec<u64> = q.drain_service_order().iter().map(|a| a.seq).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert!(q.is_empty());
        assert_eq!(q.ledger.admitted, 4);
    }

    #[test]
    fn ledger_closes_only_when_every_outcome_lands() {
        let mut ledger = ServeLedger {
            admitted: 3,
            ..ServeLedger::default()
        };
        assert!(!ledger.closes());
        ledger.record(&ServeOutcome::NoPath);
        ledger.record(&ServeOutcome::Rejected(ServeError::Cancelled));
        assert!(!ledger.closes());
        ledger.record(&ServeOutcome::Expired);
        assert!(ledger.closes());
        assert_eq!(
            (ledger.completed, ledger.rejected, ledger.expired),
            (1, 1, 1)
        );
    }
}
