//! Planning-as-a-service demo: admit a small multi-tenant workload,
//! serve it batched on the chosen backend, and print per-request
//! outcomes plus the conservation ledger.
//!
//! ```text
//! cargo run --release -p smp-serve --bin serve_demo -- [--live] [--threads N] [--sequential]
//! ```

use smp_geom::Point;
use smp_runtime::{Backend, LiveTuning};
use smp_serve::{PlanRequest, QueryClass, ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut live = false;
    let mut sequential = false;
    let mut threads = 2usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--live" => live = true,
            "--sequential" => sequential = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let cfg = ServeConfig {
        backend: if live {
            Backend::Live(LiveTuning::default())
        } else {
            Backend::Des
        },
        threads,
        ..ServeConfig::default()
    };
    let backend_name = if sequential {
        "sequential replay"
    } else if live {
        "live shared-memory"
    } else {
        "discrete-event simulation"
    };
    println!("serve_demo: backend = {backend_name}, threads = {threads}");

    let mut server = Server::new(cfg);
    let digest = server
        .prewarm("med_cube", "point")
        .unwrap_or_else(|e| usage(&format!("prewarm failed: {e}")));
    println!("prewarmed med_cube/point snapshot, digest {digest:#018x}");

    // Three tenants: two share the prewarmed med_cube/point snapshot, one
    // plans a ball robot in the walls environment (cold build), and one
    // request carries a hopeless logical deadline to show expiry.
    let mk = |env: &str, robot: &str, s: [f64; 3], g: [f64; 3]| {
        PlanRequest::new(env, robot, Point::new(s), Point::new(g))
    };
    let mut reqs = vec![
        mk("med_cube", "point", [0.1, 0.1, 0.1], [0.9, 0.9, 0.9]),
        mk("med_cube", "point", [0.2, 0.1, 0.2], [0.8, 0.9, 0.8]),
        mk("walls", "ball", [0.1, 0.5, 0.5], [0.9, 0.5, 0.5]),
        mk("med_cube", "point", [0.15, 0.2, 0.1], [0.85, 0.8, 0.9]),
        mk("nowhere", "point", [0.1, 0.1, 0.1], [0.9, 0.9, 0.9]),
    ];
    reqs[1].class = QueryClass::Batch;
    reqs[3].class = QueryClass::Batch;
    reqs[3].deadline = Some(0); // expires: service index 4 > 0
    for r in reqs {
        server.submit(r);
    }

    let report = if sequential {
        server.run_sequential()
    } else {
        server.run()
    };
    let report = report.unwrap_or_else(|e| usage(&format!("serve run failed: {e}")));

    println!("\n seq  class        latency_ns    outcome");
    for r in &report.records {
        let outcome = match &r.outcome {
            smp_serve::ServeOutcome::Solved { path, length } => {
                format!("solved: {} waypoints, length {length:.3}", path.len())
            }
            smp_serve::ServeOutcome::NoPath => "no path".to_string(),
            smp_serve::ServeOutcome::Rejected(e) => format!("rejected: {e}"),
            smp_serve::ServeOutcome::Expired => "expired (logical deadline)".to_string(),
        };
        println!(
            " {:>3}  {:<12} {:>12}    {outcome}",
            r.seq,
            r.class.name(),
            r.latency_ns
        );
    }

    let l = &report.ledger;
    println!(
        "\nledger: admitted {} = completed {} + rejected {} + expired {} (closes: {})",
        l.admitted,
        l.completed,
        l.rejected,
        l.expired,
        l.closes()
    );
    println!(
        "cache: {} hit(s), {} miss(es); {} batch(es) on {} executor submission(s)",
        report.cache_hits, report.cache_misses, report.batches, report.submissions
    );
    println!(
        "latency p50 {} ns, p99 {} ns; answers digest {:#018x}",
        report.latency_percentile(0.50),
        report.latency_percentile(0.99),
        report.answers_digest
    );
    let violations = report.conservation_violations();
    if violations.is_empty() {
        println!("conservation oracle: ok");
    } else {
        println!("conservation oracle VIOLATED: {violations:?}");
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("serve_demo: {msg}");
    eprintln!("usage: serve_demo [--live] [--threads N] [--sequential]");
    std::process::exit(2);
}
