//! Request and answer types for the serving front door.
//!
//! A [`PlanRequest`] names *what* to plan (environment/robot keys and the
//! start/goal pair) and *how urgently* (tenant class, logical deadline);
//! the server answers with a [`ServeOutcome`] whose FNV [`answer digest`]
//! [`answer_digest`] is the byte-level identity the differential oracles
//! pin: a batched concurrent run must produce exactly the digests of a
//! sequential one-at-a-time replay.

use smp_geom::Point;
use smp_plan::{QueryError, QueryResult};

/// FNV-1a offset basis (same constants as `smp_core::roadmap_digest`).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one `u64` into an FNV-1a accumulator, byte by byte.
pub fn fnv_mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Tenant class of a request: the admission queue is FIFO *within* a
/// class, and interactive requests are always dispatched before batch
/// requests admitted in the same window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryClass {
    /// Latency-sensitive traffic, dispatched first.
    Interactive,
    /// Throughput traffic, dispatched after all interactive requests.
    Batch,
}

impl QueryClass {
    /// Display name (`"interactive"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Batch => "batch",
        }
    }
}

/// One planning query submitted to the front door.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Environment key, resolved through [`crate::registry::resolve_env`].
    pub env_key: String,
    /// Robot key, resolved through [`crate::registry::resolve_robot`].
    pub robot_key: String,
    /// Start configuration.
    pub start: Point<3>,
    /// Goal configuration.
    pub goal: Point<3>,
    /// Logical admission deadline: the request expires unless it is
    /// dispatched while the server's service index (number of requests
    /// dispatched before it, across all classes) is still `<= deadline`.
    /// Logical deadlines are what keep expiry decisions — and therefore
    /// the answer set — byte-identical between a batched concurrent run
    /// and its sequential replay; wall-clock execution deadlines are a
    /// separate, optional guard ([`crate::ServeConfig::wall_deadline`]).
    pub deadline: Option<u64>,
    /// Tenant class.
    pub class: QueryClass,
    /// Virtual arrival time in ns — latency accounting only; it never
    /// affects which requests are answered or what the answers are.
    pub arrival_ns: u64,
}

impl PlanRequest {
    /// A request with no deadline, interactive class, arrival at 0.
    pub fn new(env_key: &str, robot_key: &str, start: Point<3>, goal: Point<3>) -> Self {
        PlanRequest {
            env_key: env_key.to_string(),
            robot_key: robot_key.to_string(),
            start,
            goal,
            deadline: None,
            class: QueryClass::Interactive,
            arrival_ns: 0,
        }
    }
}

/// Why a request was rejected (as opposed to expired or answered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `env_key` is not in the registry.
    UnknownEnv(String),
    /// `robot_key` is not in the registry.
    UnknownRobot(String),
    /// The query itself failed validation (bad endpoints, empty roadmap).
    Query(QueryError),
    /// The server was cancelled before this request was dispatched.
    Cancelled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownEnv(k) => write!(f, "unknown environment key {k:?}"),
            ServeError::UnknownRobot(k) => write!(f, "unknown robot key {k:?}"),
            ServeError::Query(e) => write!(f, "query rejected: {e}"),
            ServeError::Cancelled => write!(f, "server cancelled before dispatch"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Small stable discriminant folded into answer digests.
    fn digest_tag(&self) -> u64 {
        match self {
            ServeError::UnknownEnv(_) => 10,
            ServeError::UnknownRobot(_) => 11,
            ServeError::Query(QueryError::NonFinite { which }) => {
                if *which == "start" {
                    12
                } else {
                    13
                }
            }
            ServeError::Query(QueryError::InvalidStart) => 14,
            ServeError::Query(QueryError::InvalidGoal) => 15,
            ServeError::Query(QueryError::EmptyRoadmap) => 16,
            ServeError::Query(QueryError::Unreachable) => 17,
            ServeError::Cancelled => 18,
        }
    }
}

/// The final state of one admitted request. Exactly one outcome is
/// recorded per admission — the conservation ledger
/// ([`crate::queue::ServeLedger`]) counts these buckets and must close.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// A path was found: the full waypoint list and its length.
    Solved {
        /// Path waypoints, start..=goal.
        path: Vec<Point<3>>,
        /// Path length.
        length: f64,
    },
    /// The query executed but no path exists through the snapshot — this
    /// is a *completed* answer, not a rejection.
    NoPath,
    /// The request was refused before or during dispatch.
    Rejected(ServeError),
    /// The logical deadline passed before dispatch.
    Expired,
}

impl ServeOutcome {
    /// Build the outcome for an executed query.
    pub fn from_query(res: Result<QueryResult<3>, QueryError>) -> Self {
        match res {
            Ok(r) => ServeOutcome::Solved {
                path: r.path,
                length: r.length,
            },
            Err(QueryError::Unreachable) | Err(QueryError::EmptyRoadmap) => ServeOutcome::NoPath,
            Err(e) => ServeOutcome::Rejected(ServeError::Query(e)),
        }
    }

    /// True for outcomes the ledger counts as completed (served answers).
    pub fn is_completed(&self) -> bool {
        matches!(self, ServeOutcome::Solved { .. } | ServeOutcome::NoPath)
    }
}

/// Byte-level identity of an answer: FNV-1a over the outcome kind and,
/// for solved queries, every waypoint coordinate bit plus the length
/// bits. Two runs that produce equal digests for every request produced
/// byte-identical answers.
pub fn answer_digest(outcome: &ServeOutcome) -> u64 {
    let mut h = FNV_OFFSET;
    match outcome {
        ServeOutcome::Solved { path, length } => {
            h = fnv_mix(h, 1);
            h = fnv_mix(h, path.len() as u64);
            for q in path {
                for c in q.coords() {
                    h = fnv_mix(h, c.to_bits());
                }
            }
            h = fnv_mix(h, length.to_bits());
        }
        ServeOutcome::NoPath => h = fnv_mix(h, 2),
        ServeOutcome::Rejected(e) => {
            h = fnv_mix(h, 3);
            h = fnv_mix(h, e.digest_tag());
        }
        ServeOutcome::Expired => h = fnv_mix(h, 4),
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_separate_outcome_kinds() {
        let solved = ServeOutcome::Solved {
            path: vec![Point::splat(0.1), Point::splat(0.2)],
            length: 0.5,
        };
        let digests = [
            answer_digest(&solved),
            answer_digest(&ServeOutcome::NoPath),
            answer_digest(&ServeOutcome::Rejected(ServeError::Cancelled)),
            answer_digest(&ServeOutcome::Rejected(ServeError::Query(
                QueryError::InvalidStart,
            ))),
            answer_digest(&ServeOutcome::Expired),
        ];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn digest_is_sensitive_to_every_waypoint_bit() {
        let a = ServeOutcome::Solved {
            path: vec![Point::splat(0.1), Point::splat(0.2)],
            length: 0.5,
        };
        let b = ServeOutcome::Solved {
            path: vec![Point::splat(0.1), Point::new([0.2, 0.2, 0.2 + 1e-15])],
            length: 0.5,
        };
        assert_ne!(answer_digest(&a), answer_digest(&b));
    }
}
