//! Roadmap snapshots and the lease-counted snapshot cache.
//!
//! A snapshot is the PRM roadmap for one `(environment, robot)` key,
//! built **once** and published as an immutable [`Arc`]: every tenant
//! querying that key shares the same roadmap and the same prebuilt
//! [`QueryIndex`]. The FNV digest ([`smp_core::roadmap_digest`]) pins the
//! content — a cache hit provably answers against the exact roadmap any
//! client would have built cold, because the build is a pure function of
//! the key and the snapshot parameters.
//!
//! The cache tracks **leases**: each in-flight batch checks its snapshot
//! out and the entry cannot be selected for eviction while any lease is
//! outstanding. (The `Arc` already keeps the memory alive; the lease rule
//! is the stronger scheduling invariant — the cache never *forgets* a
//! snapshot that queries are still running against, so a concurrent miss
//! for the same key can never trigger a second build while the first is
//! in use.)

use crate::registry;
use crate::request::ServeError;
use smp_core::{build_prm_workload, roadmap_digest, work_cost, ParallelPrmConfig};
use smp_cspace::{Cfg, EnvValidity, StraightLinePlanner, WorkCounters};
use smp_geom::Environment;
use smp_plan::{QueryError, QueryIndex, QueryResult, Roadmap};
use smp_runtime::MachineModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache key: the resolved `(environment, robot)` pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotKey {
    /// Registered environment key.
    pub env: String,
    /// Registered robot key.
    pub robot: String,
}

impl SnapshotKey {
    /// Build a key from registry strings.
    pub fn new(env: &str, robot: &str) -> Self {
        SnapshotKey {
            env: env.to_string(),
            robot: robot.to_string(),
        }
    }
}

impl std::fmt::Display for SnapshotKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.env, self.robot)
    }
}

/// Parameters of the one-time snapshot build, shared by every key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotParams {
    /// Approximate region count of the parallel PRM build.
    pub regions_target: usize,
    /// Sampling attempts per region.
    pub attempts_per_region: usize,
    /// Neighbours per sample in the connection phase.
    pub k_neighbors: usize,
    /// Local-planner resolution (build and queries).
    pub lp_resolution: f64,
    /// Build seed; the roadmap is a pure function of `(key, params)`.
    pub seed: u64,
}

impl Default for SnapshotParams {
    fn default() -> Self {
        SnapshotParams {
            regions_target: 64,
            attempts_per_region: 5,
            k_neighbors: 4,
            lp_resolution: 0.03,
            seed: 0x5E21,
        }
    }
}

/// An immutable, shareable roadmap snapshot for one cache key.
#[derive(Debug)]
pub struct RoadmapSnapshot {
    /// The `(environment, robot)` key this snapshot serves.
    pub key: SnapshotKey,
    /// The resolved environment.
    pub env: Environment<3>,
    /// The resolved robot radius.
    pub radius: f64,
    /// Local-planner resolution used for build and queries.
    pub lp_resolution: f64,
    /// The merged roadmap.
    pub roadmap: Roadmap<3>,
    /// Prebuilt query accelerator over `roadmap`.
    pub index: QueryIndex<3>,
    /// FNV-1a content digest of `roadmap` — the cache-hit identity pin.
    pub digest: u64,
    /// Virtual cost of the build (total region gen+connect work under
    /// `machine` op costs) — what a cold miss charges the virtual clock.
    pub build_vcost: u64,
}

impl RoadmapSnapshot {
    /// Build the snapshot for `key`: resolve the registry, run the
    /// parallel-PRM workload build, assemble, digest. Pure in
    /// `(key, params)`; `machine` only prices the build cost.
    pub fn build(
        key: &SnapshotKey,
        params: &SnapshotParams,
        machine: &MachineModel,
    ) -> Result<Self, ServeError> {
        let env = registry::resolve_env(&key.env)
            .ok_or_else(|| ServeError::UnknownEnv(key.env.clone()))?;
        let radius = registry::resolve_robot(&key.robot)
            .ok_or_else(|| ServeError::UnknownRobot(key.robot.clone()))?;
        let cfg = ParallelPrmConfig {
            regions_target: params.regions_target,
            attempts_per_region: params.attempts_per_region,
            k_neighbors: params.k_neighbors,
            lp_resolution: params.lp_resolution,
            robot_radius: radius,
            seed: params.seed,
            ..ParallelPrmConfig::new(&env)
        };
        let workload = build_prm_workload(&cfg);
        let build_vcost: u64 = workload
            .regions
            .iter()
            .map(|r| work_cost(&r.gen_work, &machine.ops) + work_cost(&r.con_work, &machine.ops))
            .sum();
        let roadmap = smp_core::assemble_prm_roadmap(&workload);
        let digest = roadmap_digest(&roadmap);
        let index = QueryIndex::new(&roadmap);
        Ok(RoadmapSnapshot {
            key: key.clone(),
            env,
            radius,
            lp_resolution: params.lp_resolution,
            roadmap,
            index,
            digest,
            build_vcost,
        })
    }

    /// A tiny synthetic snapshot (free space, empty roadmap) for queue
    /// and cache tests that must not pay for a real PRM build.
    pub fn synthetic(key: SnapshotKey, digest: u64) -> Self {
        let env = smp_geom::envs::free_env();
        let roadmap: Roadmap<3> = Roadmap::new();
        let index = QueryIndex::new(&roadmap);
        RoadmapSnapshot {
            key,
            env,
            radius: 0.0,
            lp_resolution: 0.05,
            roadmap,
            index,
            digest,
            build_vcost: 1,
        }
    }

    /// Answer one query against this snapshot via the prebuilt index —
    /// a pure function of `(snapshot, start, goal, k)`, which is what
    /// makes batched and sequential serving byte-identical.
    pub fn answer(
        &self,
        start: Cfg<3>,
        goal: Cfg<3>,
        k: usize,
        work: &mut WorkCounters,
    ) -> Result<QueryResult<3>, QueryError> {
        let validity = EnvValidity::new(&self.env, self.radius);
        let lp = StraightLinePlanner::new(self.lp_resolution);
        self.index
            .solve(&self.roadmap, start, goal, &validity, &lp, k, work)
    }
}

/// A checked-out snapshot: holds the shared `Arc` and an in-flight lease
/// that is released on drop. While any lease is live, the cache will not
/// evict the entry.
#[derive(Debug)]
pub struct SnapshotLease {
    snap: Arc<RoadmapSnapshot>,
    leases: Arc<AtomicUsize>,
}

impl SnapshotLease {
    /// The shared snapshot (cloneable, outlives the lease if needed).
    pub fn snapshot(&self) -> &Arc<RoadmapSnapshot> {
        &self.snap
    }
}

impl std::ops::Deref for SnapshotLease {
    type Target = RoadmapSnapshot;
    fn deref(&self) -> &RoadmapSnapshot {
        &self.snap
    }
}

impl Drop for SnapshotLease {
    fn drop(&mut self) {
        self.leases.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Debug)]
struct CacheEntry {
    snap: Arc<RoadmapSnapshot>,
    leases: Arc<AtomicUsize>,
    last_used: u64,
}

/// LRU snapshot cache with lease-protected eviction.
#[derive(Debug)]
pub struct SnapshotCache {
    capacity: usize,
    entries: HashMap<SnapshotKey, CacheEntry>,
    tick: u64,
    /// Cache hits (checkout of an already-published snapshot).
    pub hits: u64,
    /// Cache misses (checkout that had to build).
    pub misses: u64,
    /// Entries evicted (always with zero outstanding leases).
    pub evictions: u64,
    /// Eviction log: `(key, leases at eviction)`. The eviction-safety
    /// oracle asserts every logged lease count is zero.
    pub evict_log: Vec<(SnapshotKey, usize)>,
}

impl SnapshotCache {
    /// A cache that aims to keep at most `capacity` snapshots (leased
    /// entries are never evicted, so the cache may transiently exceed
    /// capacity rather than free an in-use snapshot).
    pub fn new(capacity: usize) -> Self {
        SnapshotCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            evict_log: Vec::new(),
        }
    }

    /// Published snapshots currently in the cache.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Outstanding leases for `key` (0 if uncached).
    pub fn leases(&self, key: &SnapshotKey) -> usize {
        self.entries
            .get(key)
            .map_or(0, |e| e.leases.load(Ordering::Acquire))
    }

    /// The published digest for `key`, if cached.
    pub fn digest(&self, key: &SnapshotKey) -> Option<u64> {
        self.entries.get(key).map(|e| e.snap.digest)
    }

    /// Check out `key`, building and publishing the snapshot on a miss.
    /// Returns the lease and whether this was a hit.
    pub fn checkout_or_build(
        &mut self,
        key: &SnapshotKey,
        params: &SnapshotParams,
        machine: &MachineModel,
    ) -> Result<(SnapshotLease, bool), ServeError> {
        if let Some(lease) = self.checkout(key) {
            self.hits += 1;
            return Ok((lease, true));
        }
        self.misses += 1;
        let snap = RoadmapSnapshot::build(key, params, machine)?;
        Ok((self.publish(snap), false))
    }

    /// Check out an already-published snapshot (LRU touch + lease).
    pub fn checkout(&mut self, key: &SnapshotKey) -> Option<SnapshotLease> {
        self.tick += 1;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = self.tick;
        entry.leases.fetch_add(1, Ordering::AcqRel);
        Some(SnapshotLease {
            snap: Arc::clone(&entry.snap),
            leases: Arc::clone(&entry.leases),
        })
    }

    /// Publish a freshly built snapshot and check it out immediately.
    /// Evicts LRU unleased entries down to capacity first.
    pub fn publish(&mut self, snap: RoadmapSnapshot) -> SnapshotLease {
        self.tick += 1;
        // Make room before inserting, never touching leased entries.
        while self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.leases.load(Ordering::Acquire) == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let leases = self.leases(&k);
                    self.evict_log.push((k.clone(), leases));
                    self.entries.remove(&k);
                    self.evictions += 1;
                }
                // Every entry is leased: exceed capacity rather than
                // free a snapshot with in-flight queries.
                None => break,
            }
        }
        let key = snap.key.clone();
        let leases = Arc::new(AtomicUsize::new(1));
        let arc = Arc::new(snap);
        self.entries.insert(
            key,
            CacheEntry {
                snap: Arc::clone(&arc),
                leases: Arc::clone(&leases),
                last_used: self.tick,
            },
        );
        SnapshotLease { snap: arc, leases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineModel {
        MachineModel::hopper()
    }

    #[test]
    fn build_is_deterministic_and_digest_pinned() {
        let key = SnapshotKey::new("small_cube", "point");
        let params = SnapshotParams::default();
        let a = RoadmapSnapshot::build(&key, &params, &machine()).unwrap();
        let b = RoadmapSnapshot::build(&key, &params, &machine()).unwrap();
        assert_eq!(a.digest, b.digest);
        assert!(a.roadmap.num_vertices() > 0);
        assert_eq!(a.build_vcost, b.build_vcost);
        // the digest is the assembled-workload digest any client computes
        let env = registry::resolve_env("small_cube").unwrap();
        let cfg = ParallelPrmConfig {
            regions_target: params.regions_target,
            attempts_per_region: params.attempts_per_region,
            k_neighbors: params.k_neighbors,
            lp_resolution: params.lp_resolution,
            robot_radius: 0.0,
            seed: params.seed,
            ..ParallelPrmConfig::new(&env)
        };
        let direct = roadmap_digest(&smp_core::assemble_prm_roadmap(&build_prm_workload(&cfg)));
        assert_eq!(a.digest, direct);
    }

    #[test]
    fn unknown_keys_reject_structurally() {
        let params = SnapshotParams::default();
        assert_eq!(
            RoadmapSnapshot::build(&SnapshotKey::new("nope", "point"), &params, &machine())
                .err()
                .unwrap(),
            ServeError::UnknownEnv("nope".into())
        );
        assert_eq!(
            RoadmapSnapshot::build(&SnapshotKey::new("free", "nope"), &params, &machine())
                .err()
                .unwrap(),
            ServeError::UnknownRobot("nope".into())
        );
    }

    #[test]
    fn cache_hits_share_the_same_arc() {
        let mut cache = SnapshotCache::new(2);
        let params = SnapshotParams::default();
        let key = SnapshotKey::new("free", "point");
        let (a, hit_a) = cache.checkout_or_build(&key, &params, &machine()).unwrap();
        let (b, hit_b) = cache.checkout_or_build(&key, &params, &machine()).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(a.snapshot(), b.snapshot()));
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.leases(&key), 2);
        drop(a);
        drop(b);
        assert_eq!(cache.leases(&key), 0);
    }

    #[test]
    fn eviction_is_lru_and_never_touches_leased_entries() {
        let mut cache = SnapshotCache::new(2);
        let k1 = SnapshotKey::new("e1", "r");
        let k2 = SnapshotKey::new("e2", "r");
        let k3 = SnapshotKey::new("e3", "r");
        let l1 = cache.publish(RoadmapSnapshot::synthetic(k1.clone(), 1));
        let l2 = cache.publish(RoadmapSnapshot::synthetic(k2.clone(), 2));
        drop(l2); // k2 unleased, k1 still leased
        let _l3 = cache.publish(RoadmapSnapshot::synthetic(k3.clone(), 3));
        // k2 was the only evictable entry
        assert_eq!(cache.evictions, 1);
        assert_eq!(cache.evict_log, vec![(k2.clone(), 0)]);
        assert!(cache.digest(&k1).is_some());
        assert!(cache.digest(&k2).is_none());
        assert!(cache.digest(&k3).is_some());
        drop(l1);

        // all-leased: capacity is exceeded rather than evicting
        let mut full = SnapshotCache::new(1);
        let a = full.publish(RoadmapSnapshot::synthetic(k1.clone(), 1));
        let b = full.publish(RoadmapSnapshot::synthetic(k2.clone(), 2));
        assert_eq!(full.len(), 2);
        assert_eq!(full.evictions, 0);
        drop(a);
        drop(b);
    }
}
