//! The server loop: drain the admission queue in service order, batch
//! same-snapshot queries onto one reused executor, settle every request
//! exactly once.
//!
//! Two serving modes share all classification logic:
//!
//! * [`Server::run`] — **batched**: maximal runs of consecutive
//!   same-snapshot requests (up to `batch_max`) become one executor
//!   phase; per-query answers are computed through the snapshot's
//!   prebuilt [`smp_plan::QueryIndex`].
//! * [`Server::run_sequential`] — **one-at-a-time replay**: the same
//!   service order, no executor. This is the differential baseline: the
//!   batched run must produce byte-identical answer digests.
//!
//! Answers are pure functions of `(snapshot, request)` and expiry is
//! decided by logical service index, so batching — and the backend, and
//! the thread count — can only change *scheduling*, never *answers*.

use crate::queue::{AdmissionQueue, Admitted, ServeLedger};
use crate::registry;
use crate::request::{
    answer_digest, fnv_mix, PlanRequest, QueryClass, ServeError, ServeOutcome, FNV_OFFSET,
};
use crate::snapshot::{SnapshotCache, SnapshotKey, SnapshotLease, SnapshotParams};
use smp_core::work_cost;
use smp_cspace::WorkCounters;
use smp_obs::{MetricsRegistry, MetricsSnapshot};
use smp_runtime::{
    Backend, CancelToken, DesExecutor, ExecError, ExecSpec, Executor, LiveExecutor, MachineModel,
    RunStatus,
};
use std::time::{Duration, Instant};

/// Latency histogram bounds: decades from 10 µs to 10 s (virtual ns for
/// the DES backend, wall ns live) — wide enough that cold snapshot
/// builds land in a declared bucket, not the overflow.
const LATENCY_BOUNDS: &[u64] = &[
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Execution backend for batched query evaluation.
    pub backend: Backend,
    /// Worker count for batched evaluation.
    pub threads: usize,
    /// Max queries per batch (per executor phase).
    pub batch_max: usize,
    /// Snapshot cache capacity (leased entries are never evicted).
    pub cache_capacity: usize,
    /// Nearest neighbours tried when connecting query endpoints.
    pub k_query: usize,
    /// One-time snapshot build parameters.
    pub snapshot: SnapshotParams,
    /// Optional wall-clock guard per batch (live backend only): queries
    /// not finished within the budget settle as expired. Ignored by the
    /// DES backend, where wall time is meaningless.
    pub wall_deadline: Option<Duration>,
    /// Scheduling seed (victim selection; answers never depend on it).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            backend: Backend::Des,
            threads: 2,
            batch_max: 8,
            cache_capacity: 4,
            k_query: 8,
            snapshot: SnapshotParams::default(),
            wall_deadline: None,
            seed: 0x5E21_5E21,
        }
    }
}

/// The settled state of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecord {
    /// Admission sequence number.
    pub seq: u64,
    /// Tenant class.
    pub class: QueryClass,
    /// Final outcome.
    pub outcome: ServeOutcome,
    /// FNV answer digest ([`answer_digest`]).
    pub digest: u64,
    /// Request latency in the backend's native ns (virtual for DES and
    /// sequential replay, wall-clock live).
    pub latency_ns: u64,
    /// Digest of the snapshot the query ran against (None if the request
    /// never reached a snapshot).
    pub snapshot_digest: Option<u64>,
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One record per admitted request, in admission-sequence order.
    pub records: Vec<ServeRecord>,
    /// Conservation ledger for this run.
    pub ledger: ServeLedger,
    /// FNV fold of `(seq, digest)` over all records — the byte-level
    /// identity the differential tests compare across modes/backends.
    pub answers_digest: u64,
    /// Snapshot-cache hits during this run.
    pub cache_hits: u64,
    /// Snapshot-cache misses (builds) during this run.
    pub cache_misses: u64,
    /// Snapshot-cache evictions during this run.
    pub cache_evictions: u64,
    /// Executor phases submitted.
    pub batches: u64,
    /// Executor submissions observed on the reused executor (equals
    /// `batches` in batched mode, 0 sequentially).
    pub submissions: u64,
    /// End-to-end time of the run in backend-native ns.
    pub makespan_ns: u64,
    /// Flat `serve.*` metrics.
    pub metrics: MetricsSnapshot,
}

impl ServeReport {
    /// The runtime conservation oracle: admitted = completed + rejected +
    /// expired, every record present exactly once, in sequence order.
    /// Returns human-readable violations (empty = law holds).
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.ledger.closes() {
            v.push(format!(
                "ledger does not close: admitted {} != completed {} + rejected {} + expired {}",
                self.ledger.admitted,
                self.ledger.completed,
                self.ledger.rejected,
                self.ledger.expired
            ));
        }
        if self.records.len() as u64 != self.ledger.admitted {
            v.push(format!(
                "{} records for {} admitted requests",
                self.records.len(),
                self.ledger.admitted
            ));
        }
        for pair in self.records.windows(2) {
            if pair[0].seq >= pair[1].seq {
                v.push(format!(
                    "records out of order or duplicated: seq {} then {}",
                    pair[0].seq, pair[1].seq
                ));
                break;
            }
        }
        v
    }

    /// Exact percentile of per-request latency (sorted-index idiom).
    pub fn latency_percentile(&self, q: f64) -> u64 {
        let mut lat: Vec<u64> = self.records.iter().map(|r| r.latency_ns).collect();
        lat.sort_unstable();
        if lat.is_empty() {
            return 0;
        }
        lat[((lat.len() - 1) as f64 * q) as usize]
    }
}

/// The reused per-run executor: one instance accepts every batch
/// submission of the run (`smp_runtime` counts the submissions).
enum Exec {
    Des(DesExecutor),
    Live(Box<LiveExecutor>),
    /// Sequential replay mode: no executor at all.
    None,
}

/// The planning-as-a-service front door.
#[derive(Debug)]
pub struct Server {
    cfg: ServeConfig,
    machine: MachineModel,
    cache: SnapshotCache,
    queue: AdmissionQueue,
    cancel: CancelToken,
}

impl Server {
    /// A server with an empty queue and cold cache.
    pub fn new(cfg: ServeConfig) -> Self {
        let cache = SnapshotCache::new(cfg.cache_capacity);
        Server {
            cfg,
            machine: MachineModel::hopper(),
            cache,
            queue: AdmissionQueue::new(),
            cancel: CancelToken::new(),
        }
    }

    /// The cancellation token: firing it makes the server settle every
    /// not-yet-dispatched request as rejected (never silently dropped).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Admit a request; returns its admission sequence number.
    pub fn submit(&mut self, req: PlanRequest) -> u64 {
        self.queue.admit(req)
    }

    /// Requests currently waiting.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative conservation ledger over the server's lifetime.
    pub fn ledger(&self) -> ServeLedger {
        self.queue.ledger
    }

    /// Build (or touch) the snapshot for `(env_key, robot_key)` outside
    /// any request, returning its digest — how a deployment warms the
    /// cache before taking traffic.
    pub fn prewarm(&mut self, env_key: &str, robot_key: &str) -> Result<u64, ServeError> {
        let key = SnapshotKey::new(env_key, robot_key);
        let (lease, _hit) =
            self.cache
                .checkout_or_build(&key, &self.cfg.snapshot, &self.machine)?;
        Ok(lease.digest)
    }

    /// Serve everything queued, batching same-snapshot queries onto the
    /// run's one reused executor.
    pub fn run(&mut self) -> Result<ServeReport, ExecError> {
        self.serve(true)
    }

    /// Serve everything queued one request at a time (no executor) — the
    /// sequential replay the differential oracles compare against.
    pub fn run_sequential(&mut self) -> Result<ServeReport, ExecError> {
        self.serve(false)
    }

    fn serve(&mut self, batched: bool) -> Result<ServeReport, ExecError> {
        let admitted = self.queue.drain_service_order();
        let mut ledger = ServeLedger {
            admitted: admitted.len() as u64,
            ..ServeLedger::default()
        };
        let mut metrics = MetricsRegistry::new();
        metrics.register_histogram("serve.latency_ns", LATENCY_BOUNDS);
        let hits0 = self.cache.hits;
        let misses0 = self.cache.misses;
        let evict0 = self.cache.evictions;

        let mut exec = if !batched {
            Exec::None
        } else {
            match self.cfg.backend {
                Backend::Des => Exec::Des(DesExecutor::new(self.machine.clone())),
                Backend::Live(tuning) => {
                    let mut e = LiveExecutor::new(self.cfg.threads, tuning)
                        .with_cancel(self.cancel.clone());
                    if let Some(d) = self.cfg.wall_deadline {
                        e = e.with_deadline(d);
                    }
                    Exec::Live(Box::new(e))
                }
                // Service batches are closures over in-process snapshot
                // state and cannot cross a process boundary; a Dist
                // backend serves on the in-process live engine with
                // default tuning (answer digests are backend-invariant).
                Backend::Dist(_) => {
                    let mut e =
                        LiveExecutor::new(self.cfg.threads, smp_runtime::LiveTuning::default())
                            .with_cancel(self.cancel.clone());
                    if let Some(d) = self.cfg.wall_deadline {
                        e = e.with_deadline(d);
                    }
                    Exec::Live(Box::new(e))
                }
            }
        };

        let epoch = Instant::now();
        let mut vclock: u64 = 0;
        let mut batches: u64 = 0;
        let mut records: Vec<ServeRecord> = Vec::with_capacity(admitted.len());
        let batch_max = if batched {
            self.cfg.batch_max.max(1)
        } else {
            1
        };

        let mut i = 0usize;
        while i < admitted.len() {
            let a = &admitted[i];
            // Per-request gates, in a fixed order so both modes agree.
            if let Some(outcome) = self.gate(a, i as u64) {
                let latency = self.now_ns(&epoch, vclock);
                Self::settle(
                    &mut records,
                    &mut ledger,
                    &mut metrics,
                    a,
                    outcome,
                    latency,
                    None,
                );
                i += 1;
                continue;
            }
            // `gate` returned None: keys resolve and the request is live.
            let key = SnapshotKey::new(&a.req.env_key, &a.req.robot_key);
            // Maximal run of consecutive gate-passing same-key requests.
            let mut end = i + 1;
            while end < admitted.len()
                && end - i < batch_max
                && self.gate(&admitted[end], end as u64).is_none()
                && admitted[end].req.env_key == key.env
                && admitted[end].req.robot_key == key.robot
            {
                end += 1;
            }
            let batch = &admitted[i..end];

            let (lease, hit) =
                match self
                    .cache
                    .checkout_or_build(&key, &self.cfg.snapshot, &self.machine)
                {
                    Ok(pair) => pair,
                    Err(e) => {
                        // Defensive: keys were resolved above, but settle the
                        // whole batch as rejected rather than lose requests.
                        for b in batch {
                            let latency = self.now_ns(&epoch, vclock);
                            Self::settle(
                                &mut records,
                                &mut ledger,
                                &mut metrics,
                                b,
                                ServeOutcome::Rejected(e.clone()),
                                latency,
                                None,
                            );
                        }
                        i = end;
                        continue;
                    }
                };
            metrics.inc(
                if hit {
                    "serve.cache.hits"
                } else {
                    "serve.cache.misses"
                },
                1,
            );
            if !hit {
                // A cold build charges the virtual clock; live backends
                // already paid for it in wall time.
                vclock += lease.build_vcost;
            }

            batches += 1;
            let outcomes = self.evaluate_batch(&mut exec, &lease, batch, batches, &mut vclock)?;
            for (b, (outcome, latency)) in batch.iter().zip(outcomes) {
                Self::settle(
                    &mut records,
                    &mut ledger,
                    &mut metrics,
                    b,
                    outcome,
                    latency,
                    Some(lease.digest),
                );
            }
            drop(lease);
            i = end;
        }

        records.sort_by_key(|r| r.seq);
        let mut answers_digest = FNV_OFFSET;
        for r in &records {
            answers_digest = fnv_mix(answers_digest, r.seq);
            answers_digest = fnv_mix(answers_digest, r.digest);
        }

        let submissions = match &exec {
            Exec::Des(e) => e.submissions(),
            Exec::Live(e) => e.submissions(),
            Exec::None => 0,
        };
        let makespan_ns = self.now_ns(&epoch, vclock);
        metrics.inc("serve.requests.admitted", ledger.admitted);
        metrics.inc("serve.requests.completed", ledger.completed);
        metrics.inc("serve.requests.rejected", ledger.rejected);
        metrics.inc("serve.requests.expired", ledger.expired);
        metrics.inc("serve.batches", batches);
        metrics.inc("serve.executor.submissions", submissions);
        metrics.inc("serve.cache.evictions", self.cache.evictions - evict0);
        if let Some(h) = metrics.histogram("serve.latency_ns") {
            let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
            if let Some(p50) = p50 {
                metrics.set_gauge("serve.latency.p50_ns", p50);
            }
            if let Some(p99) = p99 {
                metrics.set_gauge("serve.latency.p99_ns", p99);
            }
        }

        self.queue.ledger.completed += ledger.completed;
        self.queue.ledger.rejected += ledger.rejected;
        self.queue.ledger.expired += ledger.expired;

        let report = ServeReport {
            records,
            ledger,
            answers_digest,
            cache_hits: self.cache.hits - hits0,
            cache_misses: self.cache.misses - misses0,
            cache_evictions: self.cache.evictions - evict0,
            batches,
            submissions,
            makespan_ns,
            metrics: metrics.snapshot(),
        };
        debug_assert!(
            report.conservation_violations().is_empty(),
            "request conservation violated: {:?}",
            report.conservation_violations()
        );
        Ok(report)
    }

    /// Classification gates shared by both modes. `None` = the request
    /// proceeds to query evaluation; `Some(outcome)` settles it now.
    fn gate(&self, a: &Admitted, service_index: u64) -> Option<ServeOutcome> {
        if self.cancel.is_cancelled() {
            return Some(ServeOutcome::Rejected(ServeError::Cancelled));
        }
        if a.req.deadline.is_some_and(|d| service_index > d) {
            return Some(ServeOutcome::Expired);
        }
        if registry::resolve_env(&a.req.env_key).is_none() {
            return Some(ServeOutcome::Rejected(ServeError::UnknownEnv(
                a.req.env_key.clone(),
            )));
        }
        if registry::resolve_robot(&a.req.robot_key).is_none() {
            return Some(ServeOutcome::Rejected(ServeError::UnknownRobot(
                a.req.robot_key.clone(),
            )));
        }
        None
    }

    /// Evaluate one batch, returning `(outcome, latency_ns)` per member
    /// in batch order.
    fn evaluate_batch(
        &self,
        exec: &mut Exec,
        lease: &SnapshotLease,
        batch: &[Admitted],
        batch_no: u64,
        vclock: &mut u64,
    ) -> Result<Vec<(ServeOutcome, u64)>, ExecError> {
        let k = self.cfg.k_query;
        match exec {
            Exec::None => {
                // Sequential replay: answer one at a time, charging each
                // query's virtual cost to the clock as it completes.
                let mut out = Vec::with_capacity(batch.len());
                for a in batch {
                    let mut work = WorkCounters::new();
                    let res = lease.answer(a.req.start, a.req.goal, k, &mut work);
                    let vcost = work_cost(&work, &self.machine.ops);
                    let begin = (*vclock).max(a.req.arrival_ns);
                    *vclock = begin + vcost;
                    let latency = vclock.saturating_sub(a.req.arrival_ns);
                    out.push((ServeOutcome::from_query(res), latency));
                }
                Ok(out)
            }
            Exec::Des(e) => {
                // One-pass cost measurement (DESIGN.md §4): compute every
                // answer once, measuring its chargeable work, then replay
                // the measured costs through the simulator for the
                // batch's virtual schedule.
                let mut outcomes = Vec::with_capacity(batch.len());
                let mut costs = Vec::with_capacity(batch.len());
                for a in batch {
                    let mut work = WorkCounters::new();
                    let res = lease.answer(a.req.start, a.req.goal, k, &mut work);
                    costs.push(work_cost(&work, &self.machine.ops));
                    outcomes.push(ServeOutcome::from_query(res));
                }
                let threads = self.cfg.threads.max(1);
                let assignment: Vec<Vec<u32>> = (0..threads)
                    .map(|w| {
                        (0..batch.len() as u32)
                            .filter(|t| *t as usize % threads == w)
                            .collect()
                    })
                    .collect();
                let spec = ExecSpec {
                    n_tasks: batch.len(),
                    costs: Some(&costs),
                    payloads: None,
                    assignment: &assignment,
                    steal: None,
                    seed: self.cfg.seed ^ batch_no,
                };
                let digests: Vec<u64> = outcomes.iter().map(answer_digest).collect();
                let out = e.execute(&spec, &|t: u32| digests[t as usize])?;
                debug_assert_eq!(out.results, digests, "executor permuted batch results");
                let begin =
                    (*vclock).max(batch.iter().map(|a| a.req.arrival_ns).max().unwrap_or(0));
                let completion = begin + out.report.makespan;
                *vclock = completion;
                Ok(outcomes
                    .into_iter()
                    .zip(batch)
                    .map(|(o, a)| (o, completion.saturating_sub(a.req.arrival_ns)))
                    .collect())
            }
            Exec::Live(e) => {
                let threads = e.threads();
                let assignment: Vec<Vec<u32>> = (0..threads)
                    .map(|w| {
                        (0..batch.len() as u32)
                            .filter(|t| *t as usize % threads == w)
                            .collect()
                    })
                    .collect();
                let spec = ExecSpec {
                    n_tasks: batch.len(),
                    costs: None,
                    payloads: None,
                    assignment: &assignment,
                    steal: None,
                    seed: self.cfg.seed ^ batch_no,
                };
                let epoch = Instant::now();
                let out = e.execute_resilient(&spec, &|t: u32| {
                    let a = &batch[t as usize];
                    let mut work = WorkCounters::new();
                    ServeOutcome::from_query(lease.answer(a.req.start, a.req.goal, k, &mut work))
                })?;
                let elapsed = epoch.elapsed().as_nanos() as u64;
                *vclock += elapsed;
                let missing_outcome = match out.status {
                    RunStatus::DeadlineExceeded { .. } => ServeOutcome::Expired,
                    _ => ServeOutcome::Rejected(ServeError::Cancelled),
                };
                Ok(out
                    .results
                    .into_iter()
                    .map(|r| (r.unwrap_or_else(|| missing_outcome.clone()), elapsed))
                    .collect())
            }
        }
    }

    fn settle(
        records: &mut Vec<ServeRecord>,
        ledger: &mut ServeLedger,
        metrics: &mut MetricsRegistry,
        a: &Admitted,
        outcome: ServeOutcome,
        latency_ns: u64,
        snapshot_digest: Option<u64>,
    ) {
        ledger.record(&outcome);
        metrics.observe("serve.latency_ns", latency_ns);
        records.push(ServeRecord {
            seq: a.seq,
            class: a.req.class,
            digest: answer_digest(&outcome),
            outcome,
            latency_ns,
            snapshot_digest,
        });
    }

    /// Backend-native "now": virtual clock for DES/sequential, wall ns
    /// live.
    fn now_ns(&self, epoch: &Instant, vclock: u64) -> u64 {
        match self.cfg.backend {
            Backend::Des => vclock,
            Backend::Live(_) | Backend::Dist(_) => epoch.elapsed().as_nanos() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_geom::Point;

    fn fast_params() -> SnapshotParams {
        SnapshotParams {
            regions_target: 16,
            attempts_per_region: 4,
            ..SnapshotParams::default()
        }
    }

    fn cfg_des() -> ServeConfig {
        ServeConfig {
            snapshot: fast_params(),
            cache_capacity: 2,
            ..ServeConfig::default()
        }
    }

    /// A mixed workload: two tenants sharing `small_cube`, one on `free`,
    /// one unknown env, one logically-expired batch request.
    fn workload() -> Vec<PlanRequest> {
        let mk = |env: &str, robot: &str, s: f64, g: f64| {
            PlanRequest::new(env, robot, Point::splat(s), Point::splat(g))
        };
        vec![
            mk("small_cube", "point", 0.1, 0.9),
            mk("small_cube", "point", 0.2, 0.8),
            PlanRequest {
                class: QueryClass::Batch,
                ..mk("free", "probe", 0.15, 0.85)
            },
            mk("no-such-env", "point", 0.1, 0.9),
            PlanRequest {
                class: QueryClass::Batch,
                // Service order puts this last (index 5 > deadline 3).
                deadline: Some(3),
                ..mk("small_cube", "point", 0.3, 0.7)
            },
            mk("small_cube", "ball", 0.25, 0.75),
        ]
    }

    #[test]
    fn batched_des_run_matches_sequential_replay_byte_for_byte() {
        let mut batched = Server::new(cfg_des());
        let mut sequential = Server::new(cfg_des());
        for req in workload() {
            batched.submit(req.clone());
            sequential.submit(req);
        }
        let b = batched.run().expect("batched run");
        let s = sequential.run_sequential().expect("sequential replay");

        assert_eq!(b.answers_digest, s.answers_digest);
        assert_eq!(b.records.len(), s.records.len());
        for (rb, rs) in b.records.iter().zip(&s.records) {
            assert_eq!(rb.seq, rs.seq);
            assert_eq!(rb.digest, rs.digest, "seq {}", rb.seq);
            assert_eq!(rb.outcome, rs.outcome, "seq {}", rb.seq);
        }
        assert!(
            b.conservation_violations().is_empty(),
            "{:?}",
            b.conservation_violations()
        );
        assert!(s.conservation_violations().is_empty());
        assert!(b.ledger.closes() && s.ledger.closes());
        assert_eq!(b.ledger.expired, 1);
        assert_eq!(b.ledger.rejected, 1);
        assert_eq!(b.ledger.completed, 4);
        // Batched mode actually used the reused executor; sequential never did.
        assert_eq!(b.submissions, b.batches);
        assert!(b.batches >= 1);
        assert_eq!(s.submissions, 0);
        assert!(batched.ledger().closes());
        assert_eq!(
            b.metrics.get("serve.requests.admitted"),
            Some(workload().len() as u64)
        );
    }

    #[test]
    fn warm_cache_reuses_snapshots_and_shrinks_makespan() {
        let reqs: Vec<PlanRequest> = workload()
            .into_iter()
            .filter(|r| r.env_key == "small_cube" && r.robot_key == "point" && r.deadline.is_none())
            .collect();
        assert!(reqs.len() >= 2);

        let mut cold = Server::new(cfg_des());
        for r in reqs.clone() {
            cold.submit(r);
        }
        let cold_report = cold.run().expect("cold run");
        assert_eq!(cold_report.cache_misses, 1);
        assert_eq!(cold_report.cache_hits, 0);

        let mut warm = Server::new(cfg_des());
        let digest = warm.prewarm("small_cube", "point").expect("prewarm");
        for r in reqs {
            warm.submit(r);
        }
        let warm_report = warm.run().expect("warm run");
        assert_eq!(warm_report.cache_misses, 0);
        assert_eq!(warm_report.cache_hits, 1);
        // Same snapshot content either way.
        assert_eq!(warm_report.records[0].snapshot_digest, Some(digest));
        assert_eq!(cold_report.records[0].snapshot_digest, Some(digest));
        // Identical answers; strictly smaller virtual makespan (no build).
        assert_eq!(warm_report.answers_digest, cold_report.answers_digest);
        assert!(warm_report.makespan_ns < cold_report.makespan_ns);
    }

    #[test]
    fn cancellation_settles_every_request_as_rejected() {
        let mut server = Server::new(cfg_des());
        for req in workload() {
            server.submit(req);
        }
        server.cancel_token().cancel();
        let report = server.run().expect("cancelled run");
        assert!(report.conservation_violations().is_empty());
        assert_eq!(report.ledger.rejected, report.ledger.admitted);
        assert!(report
            .records
            .iter()
            .all(|r| r.outcome == ServeOutcome::Rejected(ServeError::Cancelled)));
        assert_eq!(report.batches, 0);
    }
}
