//! Planning-as-a-service front door (`smp-serve`).
//!
//! Sampling-based planners split naturally into an expensive, reusable
//! phase (building a roadmap for an environment/robot pair) and a cheap,
//! per-request phase (answering one start/goal query against that
//! roadmap). This crate serves the second phase as a multi-tenant
//! request/response loop while amortising the first:
//!
//! * **Admission** ([`AdmissionQueue`]) — requests get monotone sequence
//!   numbers and a deterministic *service order*: interactive class
//!   first, then batch, FIFO within each class. The order is a pure
//!   function of the admitted set, never of thread scheduling.
//! * **Snapshots** ([`RoadmapSnapshot`], [`SnapshotCache`]) — the PRM
//!   roadmap for each `(environment, robot)` key is built **once** via
//!   the existing parallel-construction pipeline, digest-pinned, and
//!   published as a shared immutable `Arc` with lease-counted LRU
//!   eviction (an in-use snapshot is never evicted).
//! * **Batched service** ([`Server`]) — consecutive same-snapshot
//!   queries become one phase on a single reused executor (DES or live
//!   shared-memory). Answers are pure functions of `(snapshot,
//!   request)`, so batching changes only *when* work runs, never *what*
//!   it returns.
//! * **Oracles** — every run carries a request-conservation ledger
//!   (admitted = completed + rejected + expired) checked at runtime, and
//!   an answers digest that must be byte-identical between a batched
//!   concurrent run and a sequential one-at-a-time replay. The
//!   `smp-check --serve-smoke` generator and the workspace differential
//!   tests enforce both.
//!
//! ```
//! use smp_serve::{PlanRequest, ServeConfig, Server};
//! use smp_geom::Point;
//!
//! let mut server = Server::new(ServeConfig::default());
//! server.submit(PlanRequest::new(
//!     "small_cube",
//!     "point",
//!     Point::new([0.1, 0.1, 0.1]),
//!     Point::new([0.9, 0.9, 0.9]),
//! ));
//! let report = server.run().unwrap();
//! assert!(report.ledger.closes());
//! assert!(report.conservation_violations().is_empty());
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod queue;
pub mod registry;
pub mod request;
pub mod server;
pub mod snapshot;

pub use queue::{AdmissionQueue, Admitted, ServeLedger};
pub use request::{answer_digest, fnv_mix, PlanRequest, QueryClass, ServeError, ServeOutcome};
pub use server::{ServeConfig, ServeRecord, ServeReport, Server};
pub use snapshot::{RoadmapSnapshot, SnapshotCache, SnapshotKey, SnapshotLease, SnapshotParams};
