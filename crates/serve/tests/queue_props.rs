//! Property suite for the admission/batch queue and the snapshot cache.
//!
//! Four laws the serving layer must uphold for *every* workload, not
//! just the curated unit-test ones:
//!
//! 1. **Conservation** — admitted = completed + rejected + expired, one
//!    record per admission, for arbitrary tenant mixes in both batched
//!    and sequential modes.
//! 2. **FIFO fairness within class** — the service order never reorders
//!    two requests of the same tenant class, and interactive always
//!    precedes batch.
//! 3. **Expiry is settlement, not loss** — a deadline-expired request
//!    produces an `Expired` record; it is never silently dropped.
//! 4. **Eviction safety** — the cache never evicts a snapshot with
//!    outstanding leases, for arbitrary publish/checkout/drop
//!    interleavings.

use proptest::prelude::*;
use smp_geom::Point;
use smp_serve::{
    AdmissionQueue, PlanRequest, QueryClass, RoadmapSnapshot, ServeConfig, ServeOutcome, Server,
    SnapshotCache, SnapshotKey, SnapshotParams,
};

/// Compact request descriptor the strategies generate:
/// `((env_sel, robot_sel), (batch_class, has_deadline, deadline), start, goal)`.
type ReqDesc = ((u8, u8), (bool, bool, u8), f64, f64);

fn deadline_of(d: &ReqDesc) -> Option<u64> {
    let (_, (_, has_deadline, deadline), _, _) = *d;
    has_deadline.then_some(u64::from(deadline))
}

fn build_request(d: &ReqDesc) -> PlanRequest {
    let ((env_sel, robot_sel), (batch, _, _), s, g) = *d;
    // Mostly the cheap-to-build `free` env; some unknown keys to exercise
    // rejection. Valid keys stay in a 2-key set so runs hit the cache.
    let env = match env_sel % 4 {
        0 | 1 => "free",
        2 => "small_cube",
        _ => "no-such-env",
    };
    let robot = match robot_sel % 3 {
        0 => "point",
        1 => "probe",
        _ => "no-such-robot",
    };
    PlanRequest {
        deadline: deadline_of(d),
        class: if batch {
            QueryClass::Batch
        } else {
            QueryClass::Interactive
        },
        ..PlanRequest::new(env, robot, Point::splat(s), Point::splat(g))
    }
}

fn req_strategy() -> impl Strategy<Value = ReqDesc> {
    (
        (0u8..8, 0u8..8),
        (prop::bool::ANY, prop::bool::ANY, 0u8..12),
        0.05f64..0.95,
        0.05f64..0.95,
    )
}

/// A tiny snapshot build so every proptest case is milliseconds, not
/// seconds.
fn tiny_cfg(batch_max: usize, cache_capacity: usize) -> ServeConfig {
    ServeConfig {
        batch_max,
        cache_capacity,
        snapshot: SnapshotParams {
            regions_target: 8,
            attempts_per_region: 2,
            ..SnapshotParams::default()
        },
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Law 1 + 3: conservation closes and every deadline-expired request
    /// is settled as `Expired` — in batched mode and sequential replay,
    /// across batch sizes and cache capacities.
    #[test]
    fn conservation_holds_for_arbitrary_workloads(
        descs in prop::collection::vec(req_strategy(), 0..24),
        batch_max in 1usize..6,
        cache_capacity in 1usize..3,
        batched in prop::bool::ANY,
    ) {
        let mut server = Server::new(tiny_cfg(batch_max, cache_capacity));
        let mut seqs = Vec::new();
        for d in &descs {
            seqs.push(server.submit(build_request(d)));
        }
        let report = if batched { server.run() } else { server.run_sequential() }
            .expect("serve run");

        prop_assert!(report.conservation_violations().is_empty(),
            "{:?}", report.conservation_violations());
        prop_assert!(report.ledger.closes());
        prop_assert_eq!(report.ledger.admitted, descs.len() as u64);

        // One record per admission, none lost, none duplicated.
        let mut recorded: Vec<u64> = report.records.iter().map(|r| r.seq).collect();
        recorded.sort_unstable();
        seqs.sort_unstable();
        prop_assert_eq!(recorded, seqs);

        // Expiry is exact: a request expires iff its service index
        // exceeded its logical deadline — recompute from first principles.
        let mut by_seq: Vec<(u64, Option<u64>, QueryClass)> = descs
            .iter()
            .enumerate()
            .map(|(i, d)| (i as u64, deadline_of(d), build_request(d).class))
            .collect();
        by_seq.sort_by_key(|&(seq, _, class)| (class, seq));
        for (service_index, &(seq, deadline, _)) in by_seq.iter().enumerate() {
            let should_expire = deadline.is_some_and(|d| service_index as u64 > d);
            let rec = report.records.iter().find(|r| r.seq == seq).expect("record");
            prop_assert_eq!(
                matches!(rec.outcome, ServeOutcome::Expired),
                should_expire,
                "seq {} at service index {} with deadline {:?} got {:?}",
                seq, service_index, deadline, rec.outcome
            );
        }
    }

    /// Law 2: within a class, admission order is preserved; across
    /// classes, every interactive request precedes every batch request.
    #[test]
    fn service_order_is_fifo_within_class(
        classes in prop::collection::vec(prop::bool::ANY, 0..64),
    ) {
        let mut q = AdmissionQueue::new();
        for &batch in &classes {
            let mut req = PlanRequest::new("free", "point", Point::splat(0.1), Point::splat(0.9));
            req.class = if batch { QueryClass::Batch } else { QueryClass::Interactive };
            q.admit(req);
        }
        let order = q.drain_service_order();
        prop_assert_eq!(order.len(), classes.len());
        let first_batch = order.iter().position(|a| a.req.class == QueryClass::Batch);
        if let Some(fb) = first_batch {
            prop_assert!(order[fb..].iter().all(|a| a.req.class == QueryClass::Batch),
                "interactive request dispatched after a batch request");
        }
        for pair in order.windows(2) {
            if pair[0].req.class == pair[1].req.class {
                prop_assert!(pair[0].seq < pair[1].seq, "FIFO violated within class");
            }
        }
    }

    /// Law 4: for arbitrary interleavings of publish / checkout / lease
    /// drop, the cache never evicts an entry with outstanding leases, and
    /// a leased key can only vanish through a legal (zero-lease) eviction
    /// of a stale generation.
    #[test]
    fn eviction_never_frees_a_leased_snapshot(
        ops in prop::collection::vec((0u8..3, 0u8..5, 0u8..255), 1..64),
        capacity in 1usize..4,
    ) {
        let mut cache = SnapshotCache::new(capacity);
        let mut held = Vec::new();
        for (op, key_sel, pick) in ops {
            let key = SnapshotKey::new(&format!("env{key_sel}"), "r");
            match op {
                0 => {
                    held.push(cache.publish(RoadmapSnapshot::synthetic(key, u64::from(key_sel))));
                }
                1 => {
                    if let Some(lease) = cache.checkout(&key) {
                        held.push(lease);
                    }
                }
                _ => {
                    if !held.is_empty() {
                        held.swap_remove(usize::from(pick) % held.len());
                    }
                }
            }
            // The oracle: every eviction so far happened at zero leases.
            for (k, leases) in &cache.evict_log {
                prop_assert_eq!(*leases, 0usize, "evicted {} with {} leases", k, leases);
            }
            // A held lease keeps its snapshot reachable: if its key has
            // no cache entry, the only legal explanation is a logged
            // zero-lease eviction of an earlier generation.
            for lease in &held {
                if cache.digest(&lease.key).is_none() {
                    prop_assert!(
                        cache.evict_log.iter().any(|(k, _)| *k == lease.key),
                        "leased key {} vanished without an eviction record",
                        lease.key
                    );
                }
            }
        }
    }
}
