---------------------------- MODULE StealProtocol ----------------------------
(***************************************************************************
 * Steal/ownership protocol of the distributed execution backend.
 *
 * Source of truth for `crates/runtime/src/dist/` (see PROTOCOL.md for the
 * wire encoding and the action-to-Rust cross-reference table). The model
 * abstracts away framing and timing and keeps exactly the parts that can
 * go wrong:
 *
 *   - a star topology: one coordinator owns the task-ownership map; N
 *     workers hold local queues and execute;
 *   - a lossy control plane: Done and Assign frames may be dropped at any
 *     time, and are retransmitted until acknowledged (at-least-once);
 *   - coordinator-side deduplication: the coordinator records each task's
 *     result at most once, turning at-least-once delivery into
 *     exactly-once recording;
 *   - ownership transfer through the coordinator: a steal moves tasks
 *     victim -> coordinator (in transfer) -> thief, never peer-to-peer;
 *   - an IN-FLIGHT Grant: a victim's shed (GrantSteal) and the
 *     coordinator's ownership take-over (RecvGrant) are separate steps
 *     with a grantCh frame in between. In that window the tasks exist
 *     only in the channel — the victim's queue no longer holds them and
 *     owner[] still names the victim — so RecvGrant must land ownership
 *     at the coordinator UNCONDITIONALLY, even when the requesting
 *     thief has crashed meanwhile (coordinator.rs orphaned-grant
 *     recovery; thieves are anonymous here, which makes that
 *     unconditionality the model's statement of the rule);
 *   - worker crashes: a crashed worker loses its queue, its unreported
 *     results, and its undelivered Grant frames; the coordinator
 *     recovers every unrecorded task it owned (respawn and redistribute
 *     are the same action here).
 *
 * Properties:
 *   - NoTaskDuplication  each task's result is recorded at most once,
 *                        no matter how often Done is retransmitted;
 *   - NoTaskLoss         an unrecorded task is always still reachable:
 *                        queued or executed on a live worker, in flight
 *                        to one (Assign) or from one (Grant), or held by
 *                        the coordinator in transfer;
 *   - Progress           (temporal) under weak fairness every task is
 *                        eventually recorded.
 *
 * `smp-check --dist-smoke` asserts the same three names at runtime
 * against real worker processes (crates/check/src/dist.rs).
 *
 * Model-check:  tlc -config StealProtocol.cfg StealProtocol.tla
 ***************************************************************************)

EXTENDS Integers, FiniteSets, TLC

CONSTANTS
    Workers,      \* worker slot ids, e.g. {w1, w2}
    Tasks,        \* task ids, e.g. {t1, t2, t3}
    MaxCrashes    \* bound on injected crashes (keeps TLC finite)

\* Ownership sentinel: tasks mid-transfer are owned by the coordinator,
\* mirroring IN_TRANSFER in coordinator.rs.
Coord == CHOOSE c : c \notin Workers

VARIABLES
    owner,        \* [Tasks -> Workers \cup {Coord}] ownership map (coordinator state)
    queue,        \* [Workers -> SUBSET Tasks] local queues (worker state)
    executedBy,   \* [Workers -> SUBSET Tasks] results computed, maybe unreported
    recorded,     \* SUBSET Tasks: results the coordinator has recorded
    recordCount,  \* [Tasks -> Nat] times a result was recorded (the dup probe)
    doneCh,       \* SUBSET (Tasks \X Workers): Done frames in flight
    acked,        \* [Workers -> SUBSET Tasks] DoneAck received; stop retransmit
    xferCh,       \* SUBSET (Tasks \X Workers): Assign frames in flight (task, dest)
    grantCh,      \* SUBSET (Tasks \X Workers): Grant frames in flight (task, victim)
    crashed,      \* [Workers -> BOOLEAN]
    crashes       \* number of crashes so far

vars == <<owner, queue, executedBy, recorded, recordCount,
          doneCh, acked, xferCh, grantCh, crashed, crashes>>

Live == {w \in Workers : ~crashed[w]}

-----------------------------------------------------------------------------
(* Type invariant *)

TypeOK ==
    /\ owner \in [Tasks -> Workers \cup {Coord}]
    /\ queue \in [Workers -> SUBSET Tasks]
    /\ executedBy \in [Workers -> SUBSET Tasks]
    /\ recorded \subseteq Tasks
    /\ recordCount \in [Tasks -> Nat]
    /\ doneCh \subseteq Tasks \X Workers
    /\ acked \in [Workers -> SUBSET Tasks]
    /\ xferCh \subseteq Tasks \X Workers
    /\ grantCh \subseteq Tasks \X Workers
    /\ crashed \in [Workers -> BOOLEAN]
    /\ crashes \in 0..MaxCrashes

-----------------------------------------------------------------------------
(* Initial state: Msg::Init hands every worker its queue (AssignInitial). *)

Init ==
    /\ owner \in [Tasks -> Workers]          \* any initial partition
    /\ queue = [w \in Workers |-> {t \in Tasks : owner[t] = w}]
    /\ executedBy = [w \in Workers |-> {}]
    /\ recorded = {}
    /\ recordCount = [t \in Tasks |-> 0]
    /\ doneCh = {}
    /\ acked = [w \in Workers |-> {}]
    /\ xferCh = {}
    /\ grantCh = {}
    /\ crashed = [w \in Workers |-> FALSE]
    /\ crashes = 0

-----------------------------------------------------------------------------
(* Worker actions *)

\* A live worker pops a task from its queue and computes the result.
ExecuteTask(w, t) ==
    /\ ~crashed[w]
    /\ t \in queue[w]
    /\ queue' = [queue EXCEPT ![w] = @ \ {t}]
    /\ executedBy' = [executedBy EXCEPT ![w] = @ \cup {t}]
    /\ UNCHANGED <<owner, recorded, recordCount, doneCh, acked,
                   xferCh, grantCh, crashed, crashes>>

\* Send (or retransmit) Done for an unacked result. At-least-once: this
\* action stays enabled until DoneAck, so a dropped frame is always
\* resent eventually (worker.rs DONE_RETRANSMIT_BASE/CAP backoff).
SendDone(w, t) ==
    /\ ~crashed[w]
    /\ t \in executedBy[w]
    /\ t \notin acked[w]
    /\ doneCh' = doneCh \cup {<<t, w>>}
    /\ UNCHANGED <<owner, queue, executedBy, recorded, recordCount,
                   acked, xferCh, grantCh, crashed, crashes>>

\* A victim sheds part of its queue in answer to StealAsk (Msg::Grant).
\* The shed is NOT atomic with the coordinator's ownership update: the
\* tasks leave the victim's queue and travel as a Grant frame while
\* owner[] still names the victim. RecvGrant completes the hand-over.
GrantSteal(v, S) ==
    /\ ~crashed[v]
    /\ S # {}
    /\ S \subseteq queue[v]
    /\ S # queue[v]                          \* a victim never sheds everything
    /\ queue' = [queue EXCEPT ![v] = @ \ S]
    /\ grantCh' = grantCh \cup {<<t, v>> : t \in S}
    /\ UNCHANGED <<owner, executedBy, recorded, recordCount, doneCh, acked,
                   xferCh, crashed, crashes>>

-----------------------------------------------------------------------------
(* Coordinator actions *)

\* Record an in-flight Done. The dedup guard is the protocol's core:
\* recording is a no-op for already-recorded tasks, so retransmitted or
\* duplicated Dones can never double-count (coordinator.rs done[] check).
RecordDone(t, w) ==
    /\ <<t, w>> \in doneCh
    /\ doneCh' = doneCh \ {<<t, w>>}
    /\ acked' = [acked EXCEPT ![w] = @ \cup {t}]   \* Msg::DoneAck
    /\ IF t \in recorded
           THEN UNCHANGED <<recorded, recordCount>>            \* duplicate: drop
           ELSE /\ recorded' = recorded \cup {t}
                /\ recordCount' = [recordCount EXCEPT ![t] = @ + 1]
    /\ UNCHANGED <<owner, queue, executedBy, xferCh, grantCh, crashed, crashes>>

\* The coordinator receives an in-flight Grant: ownership of the shed
\* task moves to the coordinator (IN_TRANSFER). Unconditional on any
\* thief state — this is coordinator.rs's orphaned-grant recovery: a
\* Grant whose requesting thief crashed mid-handshake is still honoured,
\* because the live victim has already shed the tasks and dropping the
\* frame would strand them (the NoTaskLoss violation the non-atomic
\* model exists to expose).
RecvGrant(t, v) ==
    /\ <<t, v>> \in grantCh
    /\ grantCh' = grantCh \ {<<t, v>>}
    \* Already-recorded tasks are filtered from the transfer
    \* (coordinator.rs live_tasks); ownership stays with the recorder.
    /\ owner' = IF t \in recorded THEN owner ELSE [owner EXCEPT ![t] = Coord]
    /\ UNCHANGED <<queue, executedBy, recorded, recordCount, doneCh,
                   acked, xferCh, crashed, crashes>>

\* Ship in-transfer tasks to a live thief (Msg::Assign). Retransmission
\* is modeled by the action staying enabled until delivery; the dest's
\* enqueued-set dedup makes redelivery idempotent (worker.rs `enqueued`).
TransferTasks(dest, S) ==
    /\ ~crashed[dest]
    /\ S # {}
    /\ S \subseteq {t \in Tasks : owner[t] = Coord /\ t \notin recorded}
    /\ xferCh' = xferCh \cup {<<t, dest>> : t \in S}
    /\ UNCHANGED <<owner, queue, executedBy, recorded, recordCount,
                   doneCh, acked, grantCh, crashed, crashes>>

\* The destination accepts a transfer (Msg::AssignAck): ownership lands.
AckTransfer(t, dest) ==
    /\ <<t, dest>> \in xferCh
    /\ ~crashed[dest]
    /\ xferCh' = xferCh \ {<<t, dest>>}
    /\ queue' = [queue EXCEPT ![dest] = @ \cup {t}]
    /\ owner' = [owner EXCEPT ![t] = dest]
    /\ UNCHANGED <<executedBy, recorded, recordCount, doneCh, acked,
                   grantCh, crashed, crashes>>

-----------------------------------------------------------------------------
(* Faults *)

\* Drop an in-flight Done or Assign frame (DistFaultPlan's drop coins).
\* Safety must hold regardless; Progress survives because the senders
\* retransmit (SendDone / TransferTasks stay enabled). There is NO
\* DropGrant: Grant rides a reliable stream and is sent exactly once, so
\* the only way a Grant dies is with its victim (WorkerCrash) — if the
\* coordinator could also drop one (as it did for a crashed thief's req
\* before the orphaned-grant fix), NoTaskLoss would fail.
DropDone(t, w) ==
    /\ <<t, w>> \in doneCh
    /\ doneCh' = doneCh \ {<<t, w>>}
    /\ UNCHANGED <<owner, queue, executedBy, recorded, recordCount,
                   acked, xferCh, grantCh, crashed, crashes>>

DropAssign(t, dest) ==
    /\ <<t, dest>> \in xferCh
    /\ xferCh' = xferCh \ {<<t, dest>>}
    /\ UNCHANGED <<owner, queue, executedBy, recorded, recordCount,
                   doneCh, acked, grantCh, crashed, crashes>>

\* A worker process dies (DistKill / a real crash): its queue, its
\* unreported results, and its undelivered Grant frames are gone (the
\* coordinator ignores frames from an unbound connection). The shed
\* tasks of a purged Grant still have owner[t] = w, so RecoverTasks
\* sweeps them with the rest of the dead worker's estate. In-flight
\* frames to it may still be in the channels; RecordDone for a dead
\* worker is harmless (dedup).
WorkerCrash(w) ==
    /\ ~crashed[w]
    /\ crashes < MaxCrashes
    /\ Cardinality(Live) > 1                 \* someone must survive to recover
    /\ crashed' = [crashed EXCEPT ![w] = TRUE]
    /\ crashes' = crashes + 1
    /\ queue' = [queue EXCEPT ![w] = {}]
    /\ executedBy' = [executedBy EXCEPT ![w] = {t \in @ : t \in acked[w]}]
    /\ doneCh' = {d \in doneCh : d[2] # w}
    /\ grantCh' = {g \in grantCh : g[2] # w}
    /\ UNCHANGED <<owner, recorded, recordCount, acked, xferCh>>

\* The coordinator notices the death (socket EOF) and reclaims every
\* unrecorded task the dead worker owned, plus in-flight transfers headed
\* its way: they become in-transfer and TransferTasks re-ships them
\* (coordinator.rs crash-recovery block; respawn and redistribute differ
\* only in which live worker receives them).
RecoverTasks(w) ==
    /\ crashed[w]
    /\ LET orphans == {t \in Tasks : owner[t] = w /\ t \notin recorded}
           inflight == {d[1] : d \in {x \in xferCh : x[2] = w}}
           lost == orphans \cup inflight
       IN /\ lost # {}
          /\ owner' = [t \in Tasks |-> IF t \in lost THEN Coord ELSE owner[t]]
          /\ xferCh' = {x \in xferCh : x[2] # w}
    /\ UNCHANGED <<queue, executedBy, recorded, recordCount, doneCh,
                   acked, grantCh, crashed, crashes>>

-----------------------------------------------------------------------------
(* Specification *)

Next ==
    \/ \E w \in Workers, t \in Tasks : ExecuteTask(w, t)
    \/ \E w \in Workers, t \in Tasks : SendDone(w, t)
    \/ \E t \in Tasks, w \in Workers : RecordDone(t, w)
    \/ \E v \in Workers : \E S \in SUBSET Tasks : GrantSteal(v, S)
    \/ \E t \in Tasks, v \in Workers : RecvGrant(t, v)
    \/ \E d \in Workers : \E S \in SUBSET Tasks : TransferTasks(d, S)
    \/ \E t \in Tasks, d \in Workers : AckTransfer(t, d)
    \/ \E t \in Tasks, w \in Workers : DropDone(t, w)
    \/ \E t \in Tasks, d \in Workers : DropAssign(t, d)
    \/ \E w \in Workers : WorkerCrash(w)
    \/ \E w \in Workers : RecoverTasks(w)

\* Weak fairness on everything except the fault actions: frames may be
\* dropped and workers may crash, but the protocol machinery itself is
\* never starved. This is exactly the claim the retransmit timers make;
\* fairness of RecvGrant is the claim that the coordinator never ignores
\* a delivered Grant, crashed thief or not.
Fairness ==
    /\ \A w \in Workers, t \in Tasks : WF_vars(ExecuteTask(w, t))
    /\ \A w \in Workers, t \in Tasks : WF_vars(SendDone(w, t))
    /\ \A t \in Tasks, w \in Workers : WF_vars(RecordDone(t, w))
    /\ \A t \in Tasks, v \in Workers : WF_vars(RecvGrant(t, v))
    /\ \A t \in Tasks, d \in Workers : WF_vars(AckTransfer(t, d))
    /\ \A d \in Workers : WF_vars(TransferTasks(d, {t \in Tasks :
            owner[t] = Coord /\ t \notin recorded}))
    /\ \A w \in Workers : WF_vars(RecoverTasks(w))

Spec == Init /\ [][Next]_vars /\ Fairness

-----------------------------------------------------------------------------
(* Properties *)

\* Each task's result is recorded at most once, ever. The retransmit
\* storm from a lossy network cannot double-count.
NoTaskDuplication == \A t \in Tasks : recordCount[t] <= 1

\* An unrecorded task is never silently dropped: it is queued on a live
\* worker, executed-but-unreported on a live worker, in flight in a
\* channel (Done, Assign, or a shed-but-undelivered Grant), or held in
\* transfer by the coordinator awaiting re-shipment. The grantCh
\* disjunct is the steal handshake's vulnerable window — the victim no
\* longer queues the task and owner[] still names the (live) victim, so
\* only the in-flight Grant keeps the task reachable.
NoTaskLoss ==
    \A t \in Tasks :
        t \notin recorded =>
            \/ \E w \in Live : t \in queue[w] \cup executedBy[w]
            \/ \E w \in Workers : <<t, w>> \in doneCh
            \/ \E w \in Live : <<t, w>> \in xferCh
            \/ \E v \in Workers : <<t, v>> \in grantCh
            \/ owner[t] = Coord
            \/ crashed[owner[t]]             \* awaiting RecoverTasks

\* Every task is eventually recorded (checked as a temporal property
\* under Spec's fairness).
Progress == <>[](recorded = Tasks)

=============================================================================
