//! Vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for API-documentation
//! purposes but never runs a real serializer (there is no `serde_json` or
//! binary format dependency, and the build environment has no registry
//! access). The vendored `serde` crate implements both traits as blanket
//! markers, so these derives only need to *accept* the derive position and
//! its `#[serde(...)]` helper attributes and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
