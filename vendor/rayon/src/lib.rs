//! Vendored stand-in for `rayon`.
//!
//! The workspace uses rayon only for order-preserving `par_iter().map(f)
//! .collect()` fan-outs over slices and ranges (one-pass workload
//! measurement). This stub reproduces that subset with `std::thread::scope`:
//! items are chunked evenly across the host's available parallelism, each
//! chunk is mapped on its own scoped thread, and results are concatenated in
//! input order. Panics in the closure propagate to the caller, like rayon.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Global worker-count override: 0 = use the host's available parallelism.
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cap the worker threads used by [`ParMap::collect`]. `0` restores the
/// default (host parallelism). Real rayon configures this through
/// `ThreadPoolBuilder::num_threads`; the stand-in exposes a global knob so
/// tests can check that results are identical for any thread count.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::SeqCst);
}

/// The current worker-count override (`0` = host parallelism).
pub fn max_threads() -> usize {
    MAX_THREADS.load(Ordering::SeqCst)
}

/// A materialized "parallel" iterator: the full item list, pending a `map`.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, pending `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Execute the map across scoped threads, preserving input order.
    pub fn collect<C: FromParResults<R>>(self) -> C {
        let n = self.items.len();
        let configured = MAX_THREADS.load(Ordering::SeqCst);
        let threads = if configured > 0 {
            configured
        } else {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1)
        }
        .min(n.max(1));
        let f = &self.f;
        let results: Vec<R> = if threads <= 1 {
            self.items.into_iter().map(f).collect()
        } else {
            let chunk_len = n.div_ceil(threads);
            let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
            let mut items = self.items;
            while !items.is_empty() {
                let rest = items.split_off(items.len().min(chunk_len));
                chunks.push(std::mem::replace(&mut items, rest));
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("parallel map worker panicked"))
                    .collect()
            })
        };
        C::from_par_results(results)
    }
}

/// Collection target of [`ParMap::collect`].
pub trait FromParResults<R> {
    fn from_par_results(results: Vec<R>) -> Self;
}

impl<R> FromParResults<R> for Vec<R> {
    fn from_par_results(results: Vec<R>) -> Self {
        results
    }
}

/// By-reference entry point (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// By-value entry point (`range.into_par_iter()`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn order_preserved() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), 10_000);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i as u64 * 2);
        }
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<u32> = (0..100u32).into_par_iter().map(|r| r + 1).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn thread_cap_preserves_results() {
        let v: Vec<u64> = (0..5_000u64).collect();
        let baseline: Vec<u64> = v.par_iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 8] {
            crate::set_max_threads(threads);
            let out: Vec<u64> = v.par_iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, baseline, "results differ with {threads} threads");
        }
        crate::set_max_threads(0);
        assert_eq!(crate::max_threads(), 0);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
