//! Vendored stand-in for `proptest`.
//!
//! Implements the subset the repo's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases`,
//! and strategies for numeric ranges, tuples, fixed-size arrays
//! (`prop::array::uniform{2,3,4}`), `prop::collection::vec`, and
//! `prop::bool::ANY`. Inputs are drawn from a deterministic RNG seeded from
//! the test name, so failures are reproducible run-to-run. Shrinking is not
//! implemented: a failing case reports the case index instead of a minimal
//! counterexample.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    /// Strategy yielding a fixed value (proptest's `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod prop {
    pub mod array {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;

        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                std::array::from_fn(|_| self.0.sample(rng))
            }
        }

        pub fn uniform2<S: Strategy>(s: S) -> UniformArray<S, 2> {
            UniformArray(s)
        }

        pub fn uniform3<S: Strategy>(s: S) -> UniformArray<S, 3> {
            UniformArray(s)
        }

        pub fn uniform4<S: Strategy>(s: S) -> UniformArray<S, 4> {
            UniformArray(s)
        }
    }

    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    pub mod bool {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        pub struct Any;

        /// Uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut StdRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by this stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; kept smaller since this stub
            // does no shrinking and tests lean on explicit with_cases anyway.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test seed (FNV-1a over the test name).
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each generated test runs `cases` iterations; the body is evaluated in a
/// closure returning `Result<(), String>` so `prop_assert!` failures abort
/// just that case with context instead of unwinding.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // the `#[test]` attribute comes through `$meta`, as in real proptest
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cfg = $cfg;
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = ($strat).sample(&mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, msg);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn composite_strategies(
            a in prop::array::uniform3(0.0f64..1.0),
            v in prop::collection::vec((0u32..5, prop::bool::ANY), 0..10),
        ) {
            prop_assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
            prop_assert!(v.len() < 10);
            for (n, _b) in &v {
                prop_assert!(*n < 5);
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let seed = crate::test_runner::seed_for("some_test");
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let s = crate::prop::collection::vec(0u64..1000, 1..50);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
