//! Vendored stand-in for `criterion`.
//!
//! Keeps the repo's `benches/` targets compiling and runnable offline. Each
//! `Bencher::iter` body executes a small fixed number of times and wall-clock
//! time is printed; there is no sampling, warm-up, or statistical analysis.
//! Useful as a smoke test that bench code still runs, not for measurements.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters: 1 };
    let start = Instant::now();
    f(&mut b);
    let dt = start.elapsed();
    println!("bench {label:<40} {dt:>12.3?}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; this stub always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = 0;
        group
            .sample_size(10)
            .bench_function("f", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
