//! Vendored stand-in for `serde`.
//!
//! The workspace annotates its public data types with
//! `#[derive(Serialize, Deserialize)]` so a future wire format can be
//! attached, but nothing in-tree actually serializes (no `serde_json`, no
//! binary codec). Since the build environment has no registry access, this
//! stub keeps the *API shape* — `Serialize` / `Deserialize<'de>` trait
//! bounds always hold via blanket impls, and the derives (re-exported from
//! the vendored `serde_derive`) accept and ignore `#[serde(...)]` helper
//! attributes.
//!
//! If real serialization is ever needed, swap this path dependency back to
//! the registry crate; no workspace code changes are required.

/// Marker for serializable types (blanket-implemented for every type).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented for every type).
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Plain {
        a: u32,
        #[serde(with = "ignored::path")]
        b: [f64; 3],
    }

    #[derive(super::Serialize, super::Deserialize)]
    #[allow(dead_code)] // compile-only check that data-carrying variants derive
    enum WithData {
        A(u32),
        B { x: f64 },
    }

    fn needs_serialize<T: super::Serialize>(_: &T) {}

    #[test]
    fn derives_and_bounds_compile() {
        let p = Plain { a: 1, b: [0.0; 3] };
        needs_serialize(&p);
        assert_eq!(p.a, 1);
    }
}
