//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! (small) slice of the `rand` API the workspace uses, backed by a
//! deterministic xoshiro256++ generator seeded via SplitMix64:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`];
//! * [`Rng`] (raw word generation) and [`RngExt::random_range`] over
//!   half-open `lo..hi` ranges of the primitive numeric types.
//!
//! Determinism is the whole point: the simulator's contract is that a run is
//! a pure function of its seeds, and this generator has no platform- or
//! thread-dependent state.

use std::ops::Range;

/// Raw random-word source.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over [`Rng`] (mirrors `rand`'s split between the core
/// word source and user-facing sampling helpers).
pub trait RngExt: Rng {
    /// Uniform sample from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // multiply-shift rejection-free mapping; bias is < 2^-64 for
                // the span sizes this workspace uses
                let x = rng.next_u64() as u128;
                lo.wrapping_add((x * span >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let x = rng.next_u64() as u128;
                (lo as i128 + (x * span >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1)
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + unit * (hi - lo);
        // guard against rounding up to the excluded endpoint
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // all-zero state is the one forbidden state; splitmix64 of any
            // seed cannot produce four zero words, but guard anyway
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 60), b.random_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..1 << 32) == b.random_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn unsized_rng_callable() {
        // mirror the workspace's `R: Rng + ?Sized` call sites
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn full_coverage_small_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
