//! Vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API: a
//! panic while holding the lock does not poison it for other threads (the
//! thread pool's per-task panic isolation depends on this).

use std::sync::PoisonError;

/// Non-poisoning mutex (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, recovering from poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Non-poisoning rwlock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(l.into_inner(), 2);
    }
}
