//! Vendored stand-in for `crossbeam`.
//!
//! Provides the `deque` module subset the thread pool uses: a per-worker
//! deque with stealers and a global injector. The real crate is lock-free;
//! this stub is mutex-based, which is slower under contention but has the
//! identical ownership semantics (each task is taken exactly once), which is
//! what the pool's correctness and its tests rely on.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt (mirrors crossbeam's API: lock contention
    /// maps to `Retry`).
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A worker-owned deque. LIFO for the owner; stealers take the opposite
    /// end (oldest task), like the Chase–Lev deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Owner pop: newest task (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_back()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle that steals the oldest task from a sibling worker.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.queue.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(_)) => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// Global FIFO injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Move a batch of tasks into `worker`'s deque and pop one of them.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            let mut q = match self.queue.try_lock() {
                Ok(q) => q,
                Err(std::sync::TryLockError::WouldBlock) => return Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(_)) => return Steal::Empty,
            };
            let n = q.len();
            if n == 0 {
                return Steal::Empty;
            }
            // take up to half the queue (at least one), like crossbeam
            let batch = (n / 2).clamp(1, 32);
            let first = q.pop_front().expect("len checked");
            let mut dst = worker.queue.lock().expect("deque poisoned");
            for _ in 1..batch {
                if let Some(t) = q.pop_front() {
                    dst.push_back(t);
                }
            }
            Steal::Success(first)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_lifo_stealer_fifo() {
            let w = Worker::new_lifo();
            w.push(1);
            w.push(2);
            w.push(3);
            let s = w.stealer();
            assert_eq!(s.steal().success(), Some(1)); // oldest
            assert_eq!(w.pop(), Some(3)); // newest
            assert_eq!(w.pop(), Some(2));
            assert!(w.pop().is_none());
        }

        #[test]
        fn injector_batch_refill() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_lifo();
            let first = inj.steal_batch_and_pop(&w).success();
            assert_eq!(first, Some(0));
            // a batch landed in the worker deque
            assert!(!w.is_empty());
        }

        #[test]
        fn empty_injector_reports_empty() {
            let inj: Injector<u32> = Injector::new();
            let w = Worker::new_lifo();
            assert!(inj.steal_batch_and_pop(&w).is_empty());
        }
    }
}
