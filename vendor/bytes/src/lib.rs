//! Vendored stand-in for `bytes`.
//!
//! `Bytes`/`BytesMut` plus the `Buf`/`BufMut` trait subset the migration
//! wire format uses. `Bytes` is an `Arc<[u8]>` window so `slice()` and
//! `clone()` are cheap, matching the real crate's semantics; the zero-copy
//! internals are not reproduced.

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write cursor over a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Cheaply cloneable immutable byte window.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-window sharing the same backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_f64_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 12);
        assert_eq!(frozen.get_u32_le(), 7);
        assert_eq!(frozen.get_f64_le(), 1.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_shares_window() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_checked() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }
}
